// The `crusade` command-line tool: co-synthesis on specification files
// without writing any C++.
//
//   crusade run <file.spec> [--no-reconfig] [--ft] [--boot-req <time>]
//               [--power-cap <mW>] [--dump-schedule] [--write-spec <out>]
//               [--trace <out.json>] [--stats] [--json]
//               [--deadline-ms <n>] [--checkpoint <file>]
//               [--checkpoint-every <evals>] [--resume]
//   crusade trace <file.spec> [-o <trace.json>] [--no-reconfig]
//               [--boot-req <time>] [--json]
//   crusade validate <file.spec> [--no-reconfig] [--boot-req <time>]
//   crusade generate (--profile <name> [--scale <f>] | --tasks <n>)
//               [--seed <n>] [-o <file.spec>]
//   crusade soak <file.spec> [--kills <n>] [--checkpoint-every <evals>]
//               [--seed <n>]
//   crusade ft <file.spec> [--no-reconfig] [--boot-req <time>]
//               [--power-cap <mW>] [--stats] [--json]
//   crusade survive <file.spec> [--seeds <n>] [--seed-base <n>]
//               [--no-reconfig] [--boot-req <time>] [--json]
//   crusade lint <file.spec> [--json]
//   crusade info <file.spec>
//   crusade profiles
//
// `crusade run` exit codes (mirrors lint's 0/1/2 plus the anytime case):
//   0  feasible architecture, search ran to completion
//   1  infeasible result (honest diagnosis printed)
//   2  operational error: bad arguments, unreadable spec, corrupt or
//      mismatched checkpoint
//   3  anytime result: the wall-clock deadline or a SIGINT/SIGTERM stop
//      truncated the search; the best architecture found so far was
//      reported (check `feasible` in --json for its quality)
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <random>
#include <sstream>
#include <set>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "analyze/analyzer.hpp"
#include "ckpt/checkpoint.hpp"
#include "ckpt/serialize.hpp"
#include "core/crusade.hpp"
#include "core/field_upgrade.hpp"
#include "core/report.hpp"
#include "ft/crusade_ft.hpp"
#include "graph/spec_io.hpp"
#include "json_writer.hpp"
#include "obs/obs.hpp"
#include "serve/client.hpp"
#include "util/run_control.hpp"
#include "tgff/profiles.hpp"
#include "util/atomic_file.hpp"

using namespace crusade;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage:\n"
               "  %s run <file.spec> [--no-reconfig] [--ft] "
               "[--boot-req <time>] [--power-cap <mW>] [--dump-schedule] "
               "[--write-spec <out>] [--trace <out.json>] [--stats] "
               "[--json] [--deadline-ms <n>] [--checkpoint <file>] "
               "[--checkpoint-every <evals>] [--resume]\n"
               "  %s trace <file.spec> [-o <trace.json>] [--no-reconfig] "
               "[--boot-req <time>] [--json]\n"
               "  %s validate <file.spec> [--no-reconfig] "
               "[--boot-req <time>]\n"
               "  %s generate (--profile <name> [--scale <f>] | --tasks <n>) "
               "[--seed <n>] [-o <file.spec>]\n"
               "  %s soak <file.spec> [--kills <n>] "
               "[--checkpoint-every <evals>] [--seed <n>]\n"
               "  %s upgrade <deployed.spec> <new.spec>\n"
               "  %s ft <file.spec> [--no-reconfig] [--boot-req <time>] "
               "[--power-cap <mW>] [--stats] [--json]\n"
               "  %s survive <file.spec> [--seeds <n>] [--seed-base <n>] "
               "[--no-reconfig] [--boot-req <time>] [--json]\n"
               "  %s lint <file.spec> [--json]\n"
               "  %s info <file.spec>\n"
               "  %s profiles\n"
               "  %s submit <file.spec> [--kind run|lint|validate|survive] "
               "[--priority <n>] [--deadline-ms <n>] [--no-reconfig] "
               "[--seeds <n>] [--wait] [--timeout-ms <n>] [--socket <path>] "
               "[--nonce <token>] [--retries <n>] [--recv-timeout-ms <n>]\n"
               "  %s status [id] [--socket <path>]\n"
               "  %s result <id> [--wait] [--timeout-ms <n>] "
               "[--trace <out.json>] [--socket <path>]\n"
               "  %s trace --job <id> [-o <trace.json>] [--socket <path>]\n"
               "  %s stats [--follow] [--interval-ms <n>] "
               "[--socket <path>]\n"
               "  %s cancel <id> [--socket <path>]\n"
               "  %s shutdown [--hard] [--socket <path>]\n"
               "run exit codes: 0 feasible, 1 infeasible, 2 operational "
               "error, 3 deadline/stop-truncated anytime result\n"
               "submit/result --wait exit codes: 0 ok/masked, 1 "
               "failed-honest/cancelled, 3 degraded-honest, 4 busy/pending\n",
               argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0,
               argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0,
               argv0, argv0);
  return 2;
}

/// Shared anytime control: `--deadline-ms` arms the wall clock; the first
/// SIGINT/SIGTERM requests a cooperative stop (synthesis wraps up and
/// reports the best architecture so far), the second falls back to the
/// default handler and kills the process.
RunController g_control;

extern "C" void handle_stop_signal(int sig) {
  // Async-signal-safe: two relaxed atomic stores.  The controller observes
  // the hub through attach_process_stop — signals are routed per-process
  // here, per-job inside the crusaded daemon, so a daemon cancellation can
  // never stop an unrelated request.
  StopHub::instance().notify(sig);
  std::signal(sig, SIG_DFL);         // a second signal terminates for real
}

void install_stop_handlers() {
  g_control.attach_process_stop(&StopHub::instance());
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
}

/// FNV-1a of the canonical architecture serialization: two architectures
/// hash equal iff their serialized bytes are identical, which is the
/// bit-identity the soak harness asserts across crash/resume boundaries.
std::uint64_t arch_hash(const Architecture& arch) {
  ckpt::BinWriter w;
  ckpt::write_architecture(w, arch);
  return ckpt::fnv1a(w.bytes());
}

/// Deterministic fingerprint of everything a run's outcome promises:
/// architecture bytes, feasibility, cost, the deterministic search
/// counters, and the validator's verdict.  Two runs of the same search —
/// interrupted or not — must produce equal signatures.
std::string result_signature(const CrusadeResult& r) {
  ckpt::BinWriter w;
  ckpt::write_architecture(w, r.arch);
  w.u8(r.feasible ? 1 : 0);
  w.f64(r.cost.total());
  w.i64(r.stats.sched_evals);
  w.i64(r.stats.repair_moves);
  w.i64(r.stats.merges_tried);
  w.i64(r.stats.merges_accepted);
  w.i64(r.stats.merge_reschedules);
  w.i64(r.stats.mode_consolidations);
  w.u8(r.validation.clean() ? 1 : 0);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(ckpt::fnv1a(w.bytes())));
  return buf;
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
  std::set<std::string> flags;

  static Args parse(int argc, char** argv, const std::set<std::string>& with_value) {
    Args args;
    for (int i = 2; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) == 0 || a == "-o") {
        if (with_value.count(a)) {
          if (i + 1 >= argc) throw Error("option " + a + " needs a value");
          args.options[a] = argv[++i];
        } else {
          args.flags.insert(a);
        }
      } else {
        args.positional.push_back(std::move(a));
      }
    }
    return args;
  }
};

/// Serializes the observability event sink to a Chrome trace-event file
/// (chrome://tracing, https://ui.perfetto.dev).  Returns 0 on success.
int write_trace_file(const std::string& path, bool quiet) {
  try {
    atomic_write_file(path, obs::trace_json() + "\n");
  } catch (const Error& e) {
    std::fprintf(stderr, "error: cannot write trace file %s: %s\n",
                 path.c_str(), e.what());
    return 1;
  }
  if (!quiet) {
    std::printf("trace: %zu spans -> %s (load in chrome://tracing or "
                "https://ui.perfetto.dev)\n",
                obs::event_count(), path.c_str());
    if (obs::dropped_events() > 0)
      std::printf("trace: %lld spans dropped (sink at capacity)\n",
                  static_cast<long long>(obs::dropped_events()));
  }
  return 0;
}

int cmd_run(int argc, char** argv) {
  const Args args = Args::parse(
      argc, argv,
      {"--boot-req", "--power-cap", "--write-spec", "--trace",
       "--deadline-ms", "--checkpoint", "--checkpoint-every"});
  if (args.positional.size() != 1) return usage(argv[0]);
  const ResourceLibrary lib = telecom_1999();
  Specification spec = read_specification_file(args.positional[0], lib);
  if (args.options.count("--boot-req"))
    spec.boot_time_requirement = parse_time(args.options.at("--boot-req"));

  install_stop_handlers();
  if (args.options.count("--deadline-ms"))
    g_control.set_deadline_ms(std::stol(args.options.at("--deadline-ms")));

  const bool want_trace = args.options.count("--trace") != 0;
  const bool want_stats = args.flags.count("--stats") != 0;
  const bool want_json = args.flags.count("--json") != 0;
  // --stats without --trace still enables the counter registry so the
  // tracing-gated RunStats fields (sched.invocations &c.) are populated;
  // phase wall times alone would not need it.
  if (want_trace || want_stats) {
    obs::reset();
    obs::set_enabled(true);
  }

  if (args.flags.count("--ft")) {
    if (args.options.count("--checkpoint") || args.flags.count("--resume"))
      throw Error(
          "--checkpoint/--resume are not supported with --ft "
          "(the fault-tolerance pipeline has no checkpoint trajectory yet)");
    CrusadeFtParams params;
    params.base.enable_reconfig = !args.flags.count("--no-reconfig");
    if (args.options.count("--power-cap"))
      params.base.alloc.power_cap_mw =
          std::stod(args.options.at("--power-cap"));
    const CrusadeFtResult r = CrusadeFt(spec, lib, params).run();
    std::printf("%s", describe_result(r.synthesis).c_str());
    int spares = 0;
    for (const ServiceModule& m : r.dependability.modules)
      spares += m.spares;
    std::printf("fault tolerance: %d assertions, %d duplicate-and-compare, "
                "%d shared; %zu service modules, %d spares; availability %s\n",
                r.transform.assertions_added,
                r.transform.duplicate_compare_added,
                r.transform.checks_shared, r.dependability.modules.size(),
                spares,
                r.dependability.meets_requirements ? "met" : "MISSED");
    if (want_stats) std::printf("%s", r.synthesis.stats.table().c_str());
    if (want_trace &&
        write_trace_file(args.options.at("--trace"), false) != 0)
      return 1;
    return r.synthesis.feasible ? 0 : 1;
  }

  CrusadeParams params;
  params.enable_reconfig = !args.flags.count("--no-reconfig");
  if (args.options.count("--power-cap"))
    params.alloc.power_cap_mw = std::stod(args.options.at("--power-cap"));
  params.control = &g_control;
  if (args.options.count("--checkpoint")) {
    params.checkpoint.path = args.options.at("--checkpoint");
    if (args.options.count("--checkpoint-every"))
      params.checkpoint.every_evals =
          std::stoll(args.options.at("--checkpoint-every"));
  } else if (args.flags.count("--resume") ||
             args.options.count("--checkpoint-every")) {
    throw Error("--resume/--checkpoint-every need --checkpoint <file>");
  }
  // Load-and-verify BEFORE synthesis: a corrupt, truncated, or foreign
  // checkpoint is an operational error (exit 2, via the Error path in
  // main), never a silent restart from scratch.
  ckpt::Checkpoint loaded;
  if (args.flags.count("--resume")) {
    loaded = ckpt::load_checkpoint(params.checkpoint.path, lib);
    ckpt::check_spec_hash(loaded, Crusade::fingerprint(spec, lib, params));
    params.resume = &loaded;
  }
  const CrusadeResult r = Crusade(spec, lib, params).run();
  // Exit-code contract (usage text): truncation outranks the feasibility
  // bit — a deadline-stopped run reports the best architecture so far and
  // exits 3 so scripts can tell "anytime answer" from "final answer".
  const int exit_code = r.stopped ? 3 : (r.feasible ? 0 : 1);
  if (want_trace && write_trace_file(args.options.at("--trace"), want_json))
    return 2;
  if (want_json) {
    // Machine-readable envelope; the stats sub-document comes straight from
    // RunStats::to_json so CLI and library schemas cannot drift.
    char hash_hex[32];
    std::snprintf(hash_hex, sizeof hash_hex, "%016llx",
                  static_cast<unsigned long long>(arch_hash(r.arch)));
    tools::JsonWriter w;
    w.begin_object()
        .key("spec").value(args.positional[0])
        .key("feasible").value(r.feasible)
        .key("stopped").value(r.stopped)
        .key("resumed").value(r.resumed)
        .key("validation_clean").value(r.validation.clean())
        .key("arch_hash").value(std::string(hash_hex))
        .key("cost").value(r.cost.total(), 2)
        .key("power_mw").value(r.power_mw, 2)
        .key("pes").value(r.pe_count)
        .key("links").value(r.link_count)
        .key("modes").value(r.mode_count);
    if (want_trace)
      w.key("trace_file").value(args.options.at("--trace"));
    w.key("stats").raw(r.stats.to_json()).end_object();
    std::printf("%s\n", w.str().c_str());
    return exit_code;
  }
  std::printf("%s", describe_result(r).c_str());
  if (want_stats) std::printf("%s", r.stats.table().c_str());
  if (!r.validation.clean())
    std::printf("self-check: %s", r.validation.summary().c_str());
  if (!r.diagnosis.empty())
    std::printf("%s", r.diagnosis.summary().c_str());
  if (args.flags.count("--dump-schedule")) {
    const FlatSpec flat(spec);
    std::printf("\n%s", dump_schedule(r, flat).c_str());
  }
  if (args.options.count("--write-spec"))
    write_specification_file(args.options.at("--write-spec"), spec, lib);
  return exit_code;
}

/// Unavailabilities are ~1e-8; fixed-point %.6f would print them as zero.
std::string sci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6e", v);
  return buf;
}

/// `crusade ft`: CRUSADE-FT synthesis with the transform report, per-module
/// unavailability and spare cost exposed — scriptable like run/lint/trace.
/// Exit codes: 0 feasible and every unavailability requirement met, 1 honest
/// negative, 2 operational error (via the Error path in main).
int cmd_ft(int argc, char** argv) {
  const Args args = Args::parse(argc, argv, {"--boot-req", "--power-cap"});
  if (args.positional.size() != 1) return usage(argv[0]);
  const ResourceLibrary lib = telecom_1999();
  Specification spec = read_specification_file(args.positional[0], lib);
  if (args.options.count("--boot-req"))
    spec.boot_time_requirement = parse_time(args.options.at("--boot-req"));
  const bool want_json = args.flags.count("--json") != 0;
  const bool want_stats = args.flags.count("--stats") != 0;
  if (want_stats) {
    obs::reset();
    obs::set_enabled(true);
  }
  CrusadeFtParams params;
  params.base.enable_reconfig = !args.flags.count("--no-reconfig");
  if (args.options.count("--power-cap"))
    params.base.alloc.power_cap_mw = std::stod(args.options.at("--power-cap"));
  const CrusadeFtResult r = CrusadeFt(spec, lib, params).run();

  int spares = 0;
  for (const ServiceModule& m : r.dependability.modules) spares += m.spares;
  const bool ok = r.synthesis.feasible && r.dependability.meets_requirements;
  if (want_json) {
    tools::JsonWriter w;
    w.begin_object()
        .key("spec").value(args.positional[0])
        .key("feasible").value(r.synthesis.feasible)
        .key("meets_requirements").value(r.dependability.meets_requirements)
        .key("total_cost").value(r.total_cost, 2)
        .key("spare_cost").value(r.dependability.total_spare_cost, 2)
        .key("transform").begin_object()
            .key("assertions").value(r.transform.assertions_added)
            .key("duplicate_compare").value(r.transform.duplicate_compare_added)
            .key("checks_shared").value(r.transform.checks_shared)
            .key("tasks_before").value(r.transform.tasks_before)
            .key("tasks_after").value(r.transform.tasks_after)
        .end_object()
        .key("modules").begin_array();
    for (const ServiceModule& m : r.dependability.modules)
      w.begin_object()
          .key("pes").value(static_cast<int>(m.pes.size()))
          .key("spares").value(m.spares)
          .key("fit_total").value(m.fit_total, 1)
          .key("unavailability").raw(sci(m.unavailability))
          .key("spare_cost").value(m.spare_cost, 2)
          .end_object();
    w.end_array().key("graphs").begin_array();
    for (std::size_t g = 0; g < r.dependability.graph_unavailability.size();
         ++g)
      w.begin_object()
          .key("unavailability")
          .raw(sci(r.dependability.graph_unavailability[g]))
          .key("requirement")
          .raw(sci(g < r.ft_spec.unavailability_requirement.size()
                       ? r.ft_spec.unavailability_requirement[g]
                       : 0))
          .key("meets").value(r.dependability.graph_meets[g] != 0)
          .end_object();
    w.end_array()
        .key("stats").raw(r.synthesis.stats.to_json())
        .end_object();
    std::printf("%s\n", w.str().c_str());
    return ok ? 0 : 1;
  }
  std::printf("%s", describe_result(r.synthesis).c_str());
  std::printf("fault tolerance: %d assertions, %d duplicate-and-compare, "
              "%d shared; %zu service modules, %d spares ($%.2f); "
              "availability %s\n",
              r.transform.assertions_added,
              r.transform.duplicate_compare_added, r.transform.checks_shared,
              r.dependability.modules.size(), spares,
              r.dependability.total_spare_cost,
              r.dependability.meets_requirements ? "met" : "MISSED");
  for (std::size_t g = 0; g < r.dependability.graph_unavailability.size();
       ++g)
    std::printf("  graph %zu: unavailability %s (requirement %s) %s\n", g,
                sci(r.dependability.graph_unavailability[g]).c_str(),
                sci(g < r.ft_spec.unavailability_requirement.size()
                        ? r.ft_spec.unavailability_requirement[g]
                        : 0)
                    .c_str(),
                r.dependability.graph_meets[g] ? "ok" : "MISSED");
  if (want_stats) std::printf("%s", r.synthesis.stats.table().c_str());
  return ok ? 0 : 1;
}

/// `crusade survive`: CRUSADE-FT synthesis followed by a seeded fault
/// campaign replaying the synthesized schedule under injected faults
/// (src/sim).  The JSON output is deterministic — same spec + seeds gives
/// byte-identical bytes (no wall times, no pointers) — so scripts can diff
/// reruns.  Exit codes: 0 campaign clean, 1 infeasible synthesis or any
/// FT-LIE verdict, 2 operational error.
int cmd_survive(int argc, char** argv) {
  const Args args =
      Args::parse(argc, argv, {"--seeds", "--seed-base", "--boot-req"});
  if (args.positional.size() != 1) return usage(argv[0]);
  const ResourceLibrary lib = telecom_1999();
  Specification spec = read_specification_file(args.positional[0], lib);
  if (args.options.count("--boot-req"))
    spec.boot_time_requirement = parse_time(args.options.at("--boot-req"));
  const bool want_json = args.flags.count("--json") != 0;

  CrusadeFtParams params;
  params.base.enable_reconfig = !args.flags.count("--no-reconfig");
  params.survive_check = true;
  params.survive_seeds = 100;
  if (args.options.count("--seeds"))
    params.survive_seeds = std::stoi(args.options.at("--seeds"));
  if (args.options.count("--seed-base"))
    params.survive_seed_base = std::stoull(args.options.at("--seed-base"));
  const CrusadeFtResult r = CrusadeFt(spec, lib, params).run();
  if (!r.synthesis.feasible) {
    if (want_json) {
      tools::JsonWriter w;
      w.begin_object()
          .key("spec").value(args.positional[0])
          .key("feasible").value(false)
          .key("scenarios").value(0)
          .end_object();
      std::printf("%s\n", w.str().c_str());
    } else {
      std::printf("survive: synthesis infeasible; nothing to simulate\n%s",
                  describe_result(r.synthesis).c_str());
    }
    return 1;
  }

  const CampaignResult& c = r.survival;
  if (want_json) {
    tools::JsonWriter w;
    w.begin_object()
        .key("spec").value(args.positional[0])
        .key("feasible").value(true)
        .key("seeds").value(params.survive_seeds)
        .key("seed_base").value(static_cast<long long>(params.survive_seed_base))
        .key("scenarios").value(c.scenarios)
        .key("masked").value(c.masked)
        .key("degraded_honest").value(c.degraded)
        .key("ft_lies").value(c.ft_lies)
        .key("transients").value(c.transients)
        .key("transients_cross_pe").value(c.transients_cross_pe)
        .key("outcomes").begin_array();
    for (const ScenarioOutcome& o : c.outcomes)
      w.begin_object()
          .key("seed").value(static_cast<long long>(o.scenario.seed))
          .key("kind").value(to_string(o.scenario.kind))
          .key("pe").value(o.scenario.pe)
          .key("mode").value(o.scenario.mode)
          .key("task").value(o.scenario.task)
          .key("edge").value(o.scenario.edge)
          .key("frame").value(o.scenario.frame)
          .key("at_ns").value(static_cast<long long>(o.scenario.at))
          .key("drops").value(o.scenario.drops)
          .key("verdict").value(to_string(o.verdict))
          .key("detected").value(o.detected)
          .key("checker_task").value(o.checker_task)
          .key("checker_pe").value(o.checker_pe)
          .key("faulted_pe").value(o.faulted_pe)
          .key("deadline_misses").value(o.deadline_misses)
          .key("frames_lost").value(o.frames_lost)
          .key("retries").value(o.retries)
          .key("worst_boot_ns").value(static_cast<long long>(o.worst_boot))
          .key("detail").value(o.detail)
          .end_object();
    w.end_array().end_object();
    std::printf("%s\n", w.str().c_str());
    return c.clean() ? 0 : 1;
  }

  std::printf("survive: %d scenarios on %s — %d masked, %d degraded-honest, "
              "%d FT-LIE\n",
              c.scenarios, args.positional[0].c_str(), c.masked, c.degraded,
              c.ft_lies);
  if (c.transients > 0)
    std::printf("  transients: %d/%d observed by a checker on a different "
                "PE\n",
                c.transients_cross_pe, c.transients);
  for (const ScenarioOutcome& o : c.outcomes)
    if (o.verdict == Verdict::FtLie)
      std::printf("  FT-LIE seed %llu (%s): %s\n",
                  static_cast<unsigned long long>(o.scenario.seed),
                  to_string(o.scenario.kind), o.detail.c_str());
  return c.clean() ? 0 : 1;
}

/// `crusade trace --job`: fetch one job's merged cross-process timeline
/// from the daemon (defined with the other client commands below).
int cmd_trace_job(const Args& args, char** argv);

/// `crusade trace`: synthesize with tracing enabled, print the phase/counter
/// table, and write a Chrome trace-event file (default trace.json) that
/// loads in chrome://tracing or https://ui.perfetto.dev.  With --job <id>
/// the trace comes from the crusaded daemon instead: the job's merged
/// timeline (daemon queue/retry spans + every worker attempt's spans).
int cmd_trace(int argc, char** argv) {
  const Args args =
      Args::parse(argc, argv, {"-o", "--boot-req", "--job", "--socket"});
  if (args.options.count("--job")) return cmd_trace_job(args, argv);
  if (args.positional.size() != 1) return usage(argv[0]);
  const ResourceLibrary lib = telecom_1999();
  Specification spec = read_specification_file(args.positional[0], lib);
  if (args.options.count("--boot-req"))
    spec.boot_time_requirement = parse_time(args.options.at("--boot-req"));
  const std::string out_path =
      args.options.count("-o") ? args.options.at("-o") : "trace.json";
  const bool json = args.flags.count("--json") != 0;

  obs::reset();
  obs::set_enabled(true);
  CrusadeParams params;
  params.enable_reconfig = !args.flags.count("--no-reconfig");
  const CrusadeResult r = Crusade(spec, lib, params).run();
  obs::set_enabled(false);

  if (write_trace_file(out_path, json) != 0) return 1;
  if (json) {
    tools::JsonWriter w;
    w.begin_object()
        .key("spec").value(args.positional[0])
        .key("feasible").value(r.feasible)
        .key("trace_file").value(out_path)
        .key("events").value(static_cast<long long>(obs::event_count()))
        .key("dropped").value(static_cast<long long>(obs::dropped_events()))
        .key("stats").raw(r.stats.to_json())
        .end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("%s\n", one_line_verdict(r).c_str());
    std::printf("%s", r.stats.table().c_str());
  }
  return r.feasible ? 0 : 1;
}

/// `crusade validate`: synthesize, then re-verify the result with the
/// independent validator and report every violation.  Exit status: 0 when
/// the validator confirms a feasible architecture, 1 when synthesis reports
/// infeasibility (the diagnosis explains why), 2 when the validator finds a
/// violation in a result the pipeline believed good — the case this command
/// exists to catch.
int cmd_validate(int argc, char** argv) {
  const Args args = Args::parse(argc, argv, {"--boot-req"});
  if (args.positional.size() != 1) return usage(argv[0]);
  const ResourceLibrary lib = telecom_1999();
  Specification spec = read_specification_file(args.positional[0], lib);
  if (args.options.count("--boot-req"))
    spec.boot_time_requirement = parse_time(args.options.at("--boot-req"));

  CrusadeParams params;
  params.enable_reconfig = !args.flags.count("--no-reconfig");
  params.self_check = true;
  const CrusadeResult r = Crusade(spec, lib, params).run();
  std::printf("%s\n", one_line_verdict(r).c_str());
  if (r.validation.clean()) {
    std::printf("validator: CLEAN — schedule, capacities, precedence, "
                "costs all re-verified\n");
  } else {
    std::printf("validator: %s", r.validation.summary(50).c_str());
  }
  if (!r.diagnosis.empty()) std::printf("%s", r.diagnosis.summary().c_str());
  // Exit 2 is reserved for a contradicted feasibility claim; an honest
  // infeasible verdict re-confirmed by the validator (deadline-missed
  // violations and the like) is exit 1.
  if (r.validation.count(ViolationKind::FeasibilityOverclaimed) > 0)
    return 2;
  return r.feasible ? 0 : 1;
}

int cmd_generate(int argc, char** argv) {
  const Args args =
      Args::parse(argc, argv, {"--profile", "--scale", "--tasks", "--seed",
                               "-o"});
  const ResourceLibrary lib = telecom_1999();
  SpecGenerator generator(lib);
  SpecGenConfig cfg;
  if (args.options.count("--profile")) {
    const double scale = args.options.count("--scale")
                             ? std::stod(args.options.at("--scale"))
                             : 1.0;
    cfg = profile_config(profile_by_name(args.options.at("--profile")),
                         scale);
  } else if (args.options.count("--tasks")) {
    cfg.total_tasks = std::stoi(args.options.at("--tasks"));
  } else {
    return usage(argv[0]);
  }
  if (args.options.count("--seed"))
    cfg.seed = std::stoull(args.options.at("--seed"));
  const Specification spec = generator.generate(cfg);
  if (args.options.count("-o")) {
    write_specification_file(args.options.at("-o"), spec, lib);
    std::printf("wrote %s: %zu graphs, %d tasks, %d edges\n",
                args.options.at("-o").c_str(), spec.graphs.size(),
                spec.total_tasks(), spec.total_edges());
  } else {
    write_specification(std::cout, spec, lib);
  }
  return 0;
}

int cmd_upgrade(int argc, char** argv) {
  const Args args = Args::parse(argc, argv, {});
  if (args.positional.size() != 2) return usage(argv[0]);
  const ResourceLibrary lib = telecom_1999();
  const Specification deployed_spec =
      read_specification_file(args.positional[0], lib);
  const Specification new_spec =
      read_specification_file(args.positional[1], lib);
  const CrusadeResult deployed = Crusade(deployed_spec, lib, {}).run();
  std::printf("deployed architecture: %s\n",
              one_line_verdict(deployed).c_str());
  const FieldUpgradeResult upgrade =
      try_field_upgrade(new_spec, lib, deployed.arch);
  if (upgrade.accommodated) {
    std::printf("UPGRADE OK: '%s' fits the existing board by "
                "reprogramming alone (all deadlines met)\n",
                args.positional[1].c_str());
    return 0;
  }
  std::printf("UPGRADE REJECTED: %d unplaceable clusters, schedule %s — "
              "a hardware change is required\n",
              upgrade.unplaceable_clusters,
              upgrade.schedule.feasible ? "feasible" : "infeasible");
  return 1;
}

int cmd_info(int argc, char** argv) {
  const Args args = Args::parse(argc, argv, {});
  if (args.positional.size() != 1) return usage(argv[0]);
  const ResourceLibrary lib = telecom_1999();
  const Specification spec =
      read_specification_file(args.positional[0], lib);
  std::printf("spec %s: %zu graphs, %d tasks, %d edges, hyperperiod %s\n",
              spec.name.c_str(), spec.graphs.size(), spec.total_tasks(),
              spec.total_edges(), format_time(spec.hyperperiod()).c_str());
  for (std::size_t g = 0; g < spec.graphs.size(); ++g) {
    const TaskGraph& graph = spec.graphs[g];
    std::printf("  %-16s period %-8s est %-8s %3d tasks %3d edges",
                graph.name().c_str(), format_time(graph.period()).c_str(),
                format_time(graph.est()).c_str(), graph.task_count(),
                graph.edge_count());
    if (spec.compatibility) {
      std::string partners;
      for (std::size_t o = 0; o < spec.graphs.size(); ++o)
        if (o != g && spec.compatibility->compatible(static_cast<int>(g),
                                                     static_cast<int>(o)))
          partners += (partners.empty() ? "" : ",") + spec.graphs[o].name();
      if (!partners.empty())
        std::printf("  compatible: %s", partners.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

/// `crusade lint`: static analysis only — parse (without the parser's own
/// validation pass, so *every* problem is reported, not just the first) and
/// run the analyzer.  Exit code: 0 clean, 1 warnings only, 2 errors.
int cmd_lint(int argc, char** argv) {
  const Args args = Args::parse(argc, argv, {});
  if (args.positional.size() != 1) return usage(argv[0]);
  const std::string& path = args.positional[0];
  const ResourceLibrary lib = telecom_1999();
  const bool json = args.flags.count("--json") != 0;

  AnalysisReport report;
  SpecSourceMap source;
  try {
    SpecReadOptions read_options;
    read_options.source_map = &source;
    read_options.validate = false;
    const Specification spec = read_specification_file(path, lib,
                                                       read_options);
    AnalyzeOptions analyze_options;
    analyze_options.source = &source;
    report = analyze_specification(spec, lib, analyze_options);
  } catch (const Error& e) {
    // Unparseable input: the single A000 diagnostic carries the parser's
    // line-numbered message, and the exit contract still holds.
    report.diagnostics.push_back(parse_error_diagnostic(e));
  }

  if (json) {
    std::printf("%s\n", report.to_json().c_str());
  } else {
    for (const Diagnostic& d : report.diagnostics) {
      if (d.line > 0)
        std::printf("%s:%d: %s: [%s] %s", path.c_str(), d.line,
                    to_string(d.severity), d.id.c_str(), d.message.c_str());
      else
        std::printf("%s: %s: [%s] %s", path.c_str(), to_string(d.severity),
                    d.id.c_str(), d.message.c_str());
      if (!d.paper_ref.empty()) std::printf(" (%s)", d.paper_ref.c_str());
      std::printf("\n");
    }
    std::printf("%d error(s), %d warning(s), %d note(s)\n",
                report.count(Severity::Error),
                report.count(Severity::Warning),
                report.count(Severity::Note));
  }
  if (report.has_errors()) return 2;
  return report.has_warnings() ? 1 : 0;
}

/// `crusade soak`: the crash/resume soak harness (DESIGN.md §11).  Runs the
/// synthesis once uninterrupted to get the reference result, then forks
/// child synthesis processes that checkpoint as they go, SIGKILLs each at a
/// uniformly random point, resumes the survivor from its checkpoint, and
/// asserts (a) every checkpoint left on disk after a kill is absent or
/// fully loadable — never corrupt, and (b) every lineage that runs to
/// completion produces a result signature (architecture bytes, feasibility,
/// cost, search counters, validator verdict) bit-identical to the
/// uninterrupted baseline's.
int cmd_soak(int argc, char** argv) {
  const Args args =
      Args::parse(argc, argv, {"--kills", "--checkpoint-every", "--seed"});
  if (args.positional.size() != 1) return usage(argv[0]);
  const ResourceLibrary lib = telecom_1999();
  const Specification spec = read_specification_file(args.positional[0], lib);
  const int kills = args.options.count("--kills")
                        ? std::stoi(args.options.at("--kills"))
                        : 20;
  const std::int64_t every =
      args.options.count("--checkpoint-every")
          ? std::stoll(args.options.at("--checkpoint-every"))
          : 25;
  const std::uint64_t seed = args.options.count("--seed")
                                 ? std::stoull(args.options.at("--seed"))
                                 : 12345;

  const CrusadeParams params;  // defaults; the fingerprint pins them
  const auto t0 = std::chrono::steady_clock::now();
  const CrusadeResult baseline = Crusade(spec, lib, params).run();
  const double base_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const std::string expect = result_signature(baseline);
  if (!baseline.validation.clean())
    throw Error(
        "soak needs a spec whose baseline result is validator-clean; this "
        "one is not (" +
        std::string(baseline.feasible ? "feasible" : "infeasible") +
        ") — pick or generate a feasible specification");
  std::printf("soak: baseline %s in %.3fs, signature %s\n",
              baseline.feasible ? "feasible" : "infeasible", base_seconds,
              expect.c_str());

  const std::string ckpt_path = args.positional[0] + ".soak.ckpt";
  const std::string sig_path = args.positional[0] + ".soak.sig";
  std::remove(ckpt_path.c_str());
  std::remove(sig_path.c_str());

  const std::uint64_t spec_hash = Crusade::fingerprint(spec, lib, params);
  std::mt19937_64 rng(seed);
  int killed = 0, completions = 0, resumed_kills = 0, attempts = 0;
  // Kills landing after a child already finished count as completions, not
  // kills; the guard bounds the loop if the spec synthesizes much faster
  // than the baseline suggested.
  const int max_attempts = kills * 5 + 50;
  while (killed < kills && attempts < max_attempts) {
    ++attempts;
    std::fflush(stdout);
    const pid_t pid = fork();
    if (pid < 0) throw Error("soak: fork failed");
    if (pid == 0) {
      // Child: resume from the lineage's checkpoint if one exists, run to
      // completion, publish the result signature atomically.  _exit (not
      // exit) so the parent's stdio buffers are not flushed twice.
      try {
        CrusadeParams p = params;
        p.checkpoint.path = ckpt_path;
        p.checkpoint.every_evals = every;
        ckpt::Checkpoint c;
        if (file_exists(ckpt_path)) {
          c = ckpt::load_checkpoint(ckpt_path, lib);
          ckpt::check_spec_hash(c, spec_hash);
          p.resume = &c;
        }
        const CrusadeResult r = Crusade(spec, lib, p).run();
        atomic_write_file(sig_path, result_signature(r));
        _exit(0);
      } catch (...) {
        _exit(90);
      }
    }
    const bool was_resume = file_exists(ckpt_path);
    const double frac =
        std::uniform_real_distribution<double>(0.0, 1.1)(rng);
    const double wait_s = frac * std::max(base_seconds, 0.002);
    ::usleep(static_cast<useconds_t>(wait_s * 1e6));
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (WIFEXITED(status)) {
      if (WEXITSTATUS(status) != 0)
        throw Error("soak: child synthesis failed (exit " +
                    std::to_string(WEXITSTATUS(status)) + ")");
      // Finished before the kill arrived: the lineage's final answer must
      // match the uninterrupted baseline bit for bit.
      if (read_file(sig_path) != expect)
        throw Error(
            "soak: completed child's result differs from the uninterrupted "
            "baseline (determinism or resume bug)");
      ++completions;
      std::remove(ckpt_path.c_str());  // start a fresh lineage
      std::remove(sig_path.c_str());
    } else {
      ++killed;
      if (was_resume) ++resumed_kills;
      // Crash-safety invariant: whatever instant the SIGKILL hit, the
      // checkpoint file is either absent or a complete, CRC-clean,
      // fingerprint-matching snapshot.  load_checkpoint throws otherwise.
      if (file_exists(ckpt_path)) {
        const ckpt::Checkpoint c = ckpt::load_checkpoint(ckpt_path, lib);
        ckpt::check_spec_hash(c, spec_hash);
      }
    }
  }
  if (killed < kills)
    throw Error("soak: only " + std::to_string(killed) + "/" +
                std::to_string(kills) + " kills landed in " +
                std::to_string(attempts) +
                " attempts — the spec synthesizes too fast; use a larger "
                "one (crusade generate)");

  // Drain the surviving lineage to completion in-process and hold it to
  // the same bit-identity bar (also covers the no-checkpoint-yet case,
  // which must simply reproduce the baseline from scratch).
  {
    CrusadeParams p = params;
    ckpt::Checkpoint c;
    if (file_exists(ckpt_path)) {
      c = ckpt::load_checkpoint(ckpt_path, lib);
      ckpt::check_spec_hash(c, spec_hash);
      p.resume = &c;
    }
    const CrusadeResult r = Crusade(spec, lib, p).run();
    if (result_signature(r) != expect)
      throw Error(
          "soak: final resumed result differs from the uninterrupted "
          "baseline");
    ++completions;
  }
  std::remove(ckpt_path.c_str());
  std::remove(sig_path.c_str());
  std::printf(
      "soak PASS: %d SIGKILLs (%d on resumed runs), %d completions, every "
      "checkpoint loadable, every completed result bit-identical to the "
      "baseline\n",
      killed, resumed_kills, completions);
  return 0;
}

// --- crusaded client commands (DESIGN.md §13) ------------------------------

constexpr const char* kDefaultSocket = "/tmp/crusaded.sock";

std::string socket_option(const Args& args) {
  const auto it = args.options.find("--socket");
  return it == args.options.end() ? kDefaultSocket : it->second;
}

/// Minimal extraction of a top-level "key":"value" string from a response
/// body — enough to map the daemon's outcome word to an exit code without
/// growing a JSON parser (the full body is printed verbatim for machines).
std::string json_string_field(const std::string& body,
                              const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = body.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t start = at + needle.size();
  const std::size_t end = body.find('"', start);
  if (end == std::string::npos) return "";
  return body.substr(start, end - start);
}

/// Shared exit-code contract for submit/result: mirrors `crusade run`
/// (0 canonical, 1 failed-honest, 3 degraded-honest/cancelled best-so-far,
/// 4 busy/pending — try again later, 2 operational error).
int outcome_exit_code(const std::string& outcome) {
  if (outcome == "ok" || outcome == "masked") return 0;
  if (outcome == "degraded-honest") return 3;
  if (outcome.empty()) return 4;  // still pending
  return 1;                       // failed-honest, cancelled
}

int print_error_response(const serve::Response& response) {
  std::fprintf(stderr, "error (%s): %s\n", response.code.c_str(),
               response.body.c_str());
  if (response.code == "busy" || response.code == "pending" ||
      response.code == "shutting-down")
    return 4;
  return 2;
}

int cmd_submit(int argc, char** argv) {
  const Args args = Args::parse(
      argc, argv,
      {"--kind", "--priority", "--deadline-ms", "--seeds", "--timeout-ms",
       "--socket", "--fault-crash", "--fault-hang", "--fault-resource",
       "--nonce", "--retries", "--recv-timeout-ms"});
  if (args.positional.size() != 1) return usage(argv[0]);

  serve::SubmitRequest submit;
  if (args.options.count("--kind"))
    submit.kind = serve::kind_from_string(args.options.at("--kind"));
  if (args.options.count("--priority"))
    submit.priority = std::stoi(args.options.at("--priority"));
  if (args.options.count("--deadline-ms"))
    submit.deadline_ms = std::stol(args.options.at("--deadline-ms"));
  submit.enable_reconfig = args.flags.count("--no-reconfig") == 0;
  if (args.options.count("--seeds"))
    submit.survive_seeds = std::stoi(args.options.at("--seeds"));
  // Fault injection (tests, the check.sh load smoke): crash/hang the first
  // N attempts so the daemon's supervision is exercised end to end.
  if (args.options.count("--fault-crash"))
    submit.fault_crash_attempts = std::stoi(args.options.at("--fault-crash"));
  if (args.options.count("--fault-hang"))
    submit.fault_hang_attempts = std::stoi(args.options.at("--fault-hang"));
  if (args.options.count("--fault-resource"))
    submit.fault_resource_attempts =
        std::stoi(args.options.at("--fault-resource"));
  // Idempotency nonce: user-chosen (stable across invocations, so a shell
  // retry loop attaches to the same job) or auto-generated per invocation
  // (so call_resilient's own retries after a lost reply never duplicate
  // work, while separate submits stay separate jobs).
  if (args.options.count("--nonce")) {
    submit.client_nonce = args.options.at("--nonce");
  } else {
    submit.client_nonce =
        "cli-" + std::to_string(::getpid()) + "-" +
        std::to_string(std::chrono::steady_clock::now()
                           .time_since_epoch()
                           .count());
  }
  {
    std::ifstream in(args.positional[0]);
    if (!in) throw Error("cannot open " + args.positional[0]);
    std::ostringstream text;
    text << in.rdbuf();
    submit.spec_text = text.str();
  }

  serve::Request request = serve::make_submit_request(submit);
  long wait_ms = 0;
  if (args.flags.count("--wait")) {
    wait_ms = 600000;
    if (args.options.count("--timeout-ms"))
      wait_ms = std::stol(args.options.at("--timeout-ms"));
    request.fields["wait_ms"] = std::to_string(wait_ms);
  }

  // Bounded waits: the socket read must outlast the daemon-side wait, so a
  // hung daemon is a typed DaemonUnresponsive error after the window — a
  // wedged `crusade submit --wait` is never possible.
  serve::ClientConfig ccfg;
  ccfg.recv_timeout_ms = wait_ms + 10000;
  if (args.options.count("--recv-timeout-ms"))
    ccfg.recv_timeout_ms = std::stol(args.options.at("--recv-timeout-ms"));
  if (args.options.count("--retries"))
    ccfg.max_tries = std::stoi(args.options.at("--retries"));

  const serve::Response response =
      serve::Client(socket_option(args), ccfg).call_resilient(request);
  if (!response.ok) return print_error_response(response);
  std::printf("%s\n", response.body.c_str());
  if (!args.flags.count("--wait")) return 0;
  return outcome_exit_code(json_string_field(response.body, "outcome"));
}

int cmd_status(int argc, char** argv) {
  const Args args = Args::parse(argc, argv, {"--socket"});
  serve::Request request;
  request.verb = "STATUS";
  if (args.positional.size() == 1)
    request.fields["id"] = args.positional[0];
  else if (!args.positional.empty())
    return usage(argv[0]);
  const serve::Response response =
      serve::Client(socket_option(args)).call(request);
  if (!response.ok) return print_error_response(response);
  std::printf("%s\n", response.body.c_str());
  return 0;
}

/// Fetches a job's merged Chrome-trace timeline from the daemon and writes
/// it to `out_path`.  Returns 0 on success, the error-mapped exit code
/// otherwise.
int fetch_job_trace(const std::string& socket, const std::string& id,
                    const std::string& out_path, bool quiet) {
  serve::Request request;
  request.verb = "TRACE";
  request.fields["id"] = id;
  const serve::Response response = serve::Client(socket).call(request);
  if (!response.ok) return print_error_response(response);
  atomic_write_file(out_path, response.body + "\n");
  if (!quiet)
    std::printf("trace: job %s -> %s (load in chrome://tracing or "
                "https://ui.perfetto.dev)\n",
                id.c_str(), out_path.c_str());
  return 0;
}

int cmd_trace_job(const Args& args, char** argv) {
  if (!args.positional.empty()) return usage(argv[0]);
  const std::string out_path =
      args.options.count("-o") ? args.options.at("-o") : "trace.json";
  return fetch_job_trace(socket_option(args), args.options.at("--job"),
                         out_path, false);
}

int cmd_result(int argc, char** argv) {
  const Args args =
      Args::parse(argc, argv, {"--socket", "--timeout-ms", "--trace"});
  if (args.positional.size() != 1) return usage(argv[0]);
  serve::Request request;
  request.verb = "RESULT";
  request.fields["id"] = args.positional[0];
  if (args.flags.count("--wait")) {
    long timeout_ms = 600000;
    if (args.options.count("--timeout-ms"))
      timeout_ms = std::stol(args.options.at("--timeout-ms"));
    request.fields["wait_ms"] = std::to_string(timeout_ms);
  }
  const serve::Response response =
      serve::Client(socket_option(args)).call(request);
  if (!response.ok) return print_error_response(response);
  std::printf("%s\n", response.body.c_str());
  if (args.options.count("--trace")) {
    const int rc = fetch_job_trace(socket_option(args), args.positional[0],
                                   args.options.at("--trace"), false);
    if (rc != 0) return rc;
  }
  return outcome_exit_code(json_string_field(response.body, "outcome"));
}

/// `crusade stats`: one STATS snapshot, or a streaming view with --follow
/// (one JSON line per interval — pipe through jq for a live dashboard).
/// The daemon-side histograms (queue_wait_us / run_us / e2e_us) ride in
/// every snapshot.
int cmd_stats(int argc, char** argv) {
  const Args args = Args::parse(argc, argv, {"--socket", "--interval-ms"});
  if (!args.positional.empty()) return usage(argv[0]);
  long interval_ms = 1000;
  if (args.options.count("--interval-ms"))
    interval_ms = std::stol(args.options.at("--interval-ms"));
  if (interval_ms < 10) interval_ms = 10;
  const bool follow = args.flags.count("--follow") != 0;
  if (follow) install_stop_handlers();  // first ^C ends the stream cleanly
  while (true) {
    serve::Request request;
    request.verb = "STATS";
    const serve::Response response =
        serve::Client(socket_option(args)).call(request);
    if (!response.ok) return print_error_response(response);
    std::printf("%s\n", response.body.c_str());
    std::fflush(stdout);
    if (!follow || StopHub::instance().signalled()) return 0;
    ::usleep(static_cast<useconds_t>(interval_ms) * 1000);
    if (StopHub::instance().signalled()) return 0;
  }
}

int cmd_cancel(int argc, char** argv) {
  const Args args = Args::parse(argc, argv, {"--socket"});
  if (args.positional.size() != 1) return usage(argv[0]);
  serve::Request request;
  request.verb = "CANCEL";
  request.fields["id"] = args.positional[0];
  const serve::Response response =
      serve::Client(socket_option(args)).call(request);
  if (!response.ok) return print_error_response(response);
  std::printf("%s\n", response.body.c_str());
  return 0;
}

int cmd_shutdown(int argc, char** argv) {
  const Args args = Args::parse(argc, argv, {"--socket"});
  serve::Request request;
  request.verb = "SHUTDOWN";
  // Default is the graceful drain; --hard parks queued jobs back to the
  // spool and truncates running workers to their best-so-far answers.
  request.fields["drain"] = args.flags.count("--hard") ? "0" : "1";
  const serve::Response response =
      serve::Client(socket_option(args)).call(request);
  if (!response.ok) return print_error_response(response);
  std::printf("%s\n", response.body.c_str());
  return 0;
}

int cmd_profiles() {
  std::printf("paper example profiles (Tables 2-3):\n");
  for (const ExampleProfile& p : paper_profiles())
    std::printf("  %-8s %5d tasks (seed %llu)\n", p.name.c_str(), p.tasks,
                static_cast<unsigned long long>(p.seed));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];
  try {
    if (cmd == "run") return cmd_run(argc, argv);
    if (cmd == "trace") return cmd_trace(argc, argv);
    if (cmd == "validate") return cmd_validate(argc, argv);
    if (cmd == "generate") return cmd_generate(argc, argv);
    if (cmd == "soak") return cmd_soak(argc, argv);
    if (cmd == "upgrade") return cmd_upgrade(argc, argv);
    if (cmd == "ft") return cmd_ft(argc, argv);
    if (cmd == "survive") return cmd_survive(argc, argv);
    if (cmd == "lint") return cmd_lint(argc, argv);
    if (cmd == "info") return cmd_info(argc, argv);
    if (cmd == "profiles") return cmd_profiles();
    if (cmd == "submit") return cmd_submit(argc, argv);
    if (cmd == "status") return cmd_status(argc, argv);
    if (cmd == "result") return cmd_result(argc, argv);
    if (cmd == "stats") return cmd_stats(argc, argv);
    if (cmd == "cancel") return cmd_cancel(argc, argv);
    if (cmd == "shutdown") return cmd_shutdown(argc, argv);
  } catch (const Error& e) {
    // Operational errors — unreadable/invalid input, corrupt or mismatched
    // checkpoint, failed soak invariant — exit 2 (same slot lint uses for
    // hard errors), leaving 1 to mean an honest infeasible verdict.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return usage(argv[0]);
}
