// Forwarding header: the JSON emitter moved to src/util/json_writer.hpp so
// library code (src/serve, the crusaded daemon) can share the CLI's
// envelope conventions.  Existing includes of "json_writer.hpp" from the
// tools/ directory keep working through this shim.
#pragma once

#include "util/json_writer.hpp"
