#!/usr/bin/env bash
# Crash/resume soak (DESIGN.md §11 acceptance): SIGKILL synthesis processes
# at random points, resume them from their checkpoints, and assert that
# every completed run produces the bit-identical result signature of an
# uninterrupted baseline and that no kill ever leaves a corrupt checkpoint.
#
#   tools/soak.sh [binary-dir]     # default build
#
# Generates a handful of synthetic specifications of different sizes/seeds
# and drives `crusade soak` on each; the per-spec kill counts sum to >= 100.
set -euo pipefail
cd "$(dirname "$0")/.."

bindir="${1:-build}"
crusade="$bindir/tools/crusade"
[[ -x "$crusade" ]] || {
  echo "soak.sh: $crusade not built (cmake --build $bindir -j)" >&2
  exit 2
}

workdir="$bindir/soak"
mkdir -p "$workdir"

total_kills=0
run_one() {
  local tasks="$1" seed="$2" kills="$3" every="$4"
  local spec="$workdir/soak_t${tasks}_s${seed}.spec"
  "$crusade" generate --tasks "$tasks" --seed "$seed" -o "$spec" > /dev/null
  echo "--- $spec: $kills kills, checkpoint every $every evals"
  "$crusade" soak "$spec" --kills "$kills" --checkpoint-every "$every" \
    --seed "$seed"
  total_kills=$((total_kills + kills))
}

# Sizes span fast and slow syntheses; checkpoint cadence varies so kills
# land in allocation-stage and merge-stage states alike.
run_one 30  11 20 5
run_one 40  22 20 10
run_one 60  33 20 10
run_one 80  44 20 25
run_one 100 55 25 25

echo "soak.sh PASS: $total_kills SIGKILLs total, zero corrupt checkpoints,"
echo "every completed run bit-identical to its uninterrupted baseline"
