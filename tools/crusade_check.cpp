// crusade-check: repo-invariant linter over CRUSADE's own sources
// (DESIGN.md §14).  Thin shell over analyze/source_check.hpp.
//
//   crusade_check [--root DIR] [--json] [--rules]
//
// Exit codes mirror `crusade lint`: 0 = clean, 1 = findings, 2 = usage or
// internal error.
#include <cstdio>
#include <string>

#include "analyze/source_check.hpp"
#include "util/error.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: crusade_check [--root DIR] [--json] [--rules]\n"
               "  --root DIR  repo root to scan (default: .)\n"
               "  --json      machine-readable report on stdout\n"
               "  --rules     print the rule catalog and exit\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool json = false;
  bool rules = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--rules") {
      rules = true;
    } else if (arg == "--root") {
      if (++i >= argc) return usage();
      root = argv[i];
    } else {
      return usage();
    }
  }

  if (rules) {
    for (const crusade::CheckRule& rule : crusade::check_rule_catalog())
      std::printf("%s %-20s %s\n", rule.id, rule.name, rule.rationale);
    return 0;
  }

  try {
    const crusade::CheckReport report = crusade::check_tree(root);
    if (json) {
      std::printf("%s\n", report.to_json().c_str());
    } else {
      std::fputs(report.summary().c_str(), stdout);
      std::printf(
          "crusade-check: %d file(s), %d error(s), %d suppression(s)\n",
          report.files_scanned, report.errors(), report.suppressions());
    }
    return report.errors() == 0 ? 0 : 1;
  } catch (const crusade::Error& e) {
    std::fprintf(stderr, "crusade-check: %s\n", e.what());
    return 2;
  }
}
