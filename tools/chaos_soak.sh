#!/usr/bin/env bash
# Chaos soak (DESIGN.md §16 acceptance): run the crusaded daemon under the
# deterministic environment-fault plan across several seeds and hold it to
# the chaos contract:
#
#   * the daemon never wedges — it answers STATS after every campaign;
#   * every submission either completes or fails with a typed, non-empty
#     reason (silent loss is the one unforgivable outcome);
#   * the daemon's own books balance: submitted == admitted + rejected,
#     with rejections split into typed busy/bad/disk buckets;
#   * a SIGKILL mid-campaign followed by a calm restart recovers or
#     quarantines every spooled job — the spool never poisons a restart.
#
# The fault plan is pure function of its seed (wall-clock never feeds it),
# so a failing seed replays exactly:
#   tools/chaos_soak.sh [binary-dir] [--seeds N] [--rate R]
set -euo pipefail
cd "$(dirname "$0")/.."

bindir="build"
seeds=3
rate=0.05
while [[ $# -gt 0 ]]; do
  case "$1" in
    --seeds) seeds="$2"; shift 2 ;;
    --rate) rate="$2"; shift 2 ;;
    -*) echo "usage: tools/chaos_soak.sh [binary-dir] [--seeds N] [--rate R]" >&2
        exit 2 ;;
    *) bindir="$1"; shift ;;
  esac
done

crusade="$bindir/tools/crusade"
crusaded="$bindir/tools/crusaded"
for bin in "$crusade" "$crusaded"; do
  [[ -x "$bin" ]] || {
    echo "chaos_soak.sh: $bin not built (cmake --build $bindir -j)" >&2
    exit 2
  }
done

workdir="$bindir/chaos-soak"
rm -rf "$workdir"
mkdir -p "$workdir"
spec="$workdir/chaos.spec"
"$crusade" generate --tasks 40 --seed 7 -o "$spec" > /dev/null

stats_field() {  # stats_field <json-file> <key>
  sed -n 's/.*"'"$2"'":\(-\{0,1\}[0-9]*\).*/\1/p' "$1" | head -1
}

wait_socket() {
  for _ in $(seq 100); do
    [[ -S "$1" ]] && return 0
    sleep 0.1
  done
  echo "chaos_soak.sh: daemon never bound $1" >&2
  return 1
}

total_jobs=0
total_typed_failures=0
for seed in $(seq 1 "$seeds"); do
  sock="$workdir/seed$seed.sock"
  spool="$workdir/seed$seed.spool"
  log="$workdir/seed$seed.log"
  rm -rf "$sock" "$spool"
  echo "--- seed $seed: rate $rate, mixed campaign + SIGKILL + calm restart"
  "$crusaded" --socket "$sock" --spool "$spool" --workers 2 \
    --chaos "$seed:$rate" > "$log" 2>&1 &
  daemon=$!
  wait_socket "$sock"

  # A mix of cheap, cached, crashing, and resource-limited jobs.  Under
  # injected faults a submit may fail — that is the point — but it must
  # fail OUT LOUD: nonzero exit with output, never a hang, never silence.
  jobs=0
  typed_failures=0
  for i in $(seq 5); do
    for args in "--kind lint" "--kind lint" "" "--fault-crash 1"; do
      [[ $i -gt 2 && "$args" == "--fault-crash 1" ]] && continue
      # shellcheck disable=SC2086
      out=$(timeout 120 "$crusade" submit "$spec" --socket "$sock" \
        --retries 3 $args --wait 2>&1) && rc=0 || rc=$?
      jobs=$((jobs + 1))
      if [[ $rc -eq 124 ]]; then
        echo "chaos_soak.sh: seed $seed job $jobs WEDGED (timeout)" >&2
        kill -9 "$daemon" 2> /dev/null || true
        exit 1
      fi
      if [[ $rc -ne 0 ]]; then
        if [[ -z "$out" ]]; then
          echo "chaos_soak.sh: seed $seed job $jobs failed SILENTLY" >&2
          kill -9 "$daemon" 2> /dev/null || true
          exit 1
        fi
        typed_failures=$((typed_failures + 1))
      fi
    done
  done

  # Not wedged: the daemon still answers, and its books balance.
  "$crusade" stats --socket "$sock" > "$workdir/seed$seed.stats.json"
  submitted=$(stats_field "$workdir/seed$seed.stats.json" submitted)
  admitted=$(stats_field "$workdir/seed$seed.stats.json" admitted)
  r_busy=$(stats_field "$workdir/seed$seed.stats.json" rejected_busy)
  r_bad=$(stats_field "$workdir/seed$seed.stats.json" rejected_bad)
  r_disk=$(stats_field "$workdir/seed$seed.stats.json" rejected_disk)
  hits=$(stats_field "$workdir/seed$seed.stats.json" cache_hits)
  if [[ $((admitted + hits + r_busy + r_bad + r_disk)) -ne $submitted ]]; then
    echo "chaos_soak.sh: seed $seed books do not balance:" \
      "$submitted != $admitted+$hits+$r_busy+$r_bad+$r_disk" >&2
    exit 1
  fi

  # Crash the daemon outright, then restart on the same spool WITHOUT
  # chaos: recovery must come up clean, re-admitting or quarantining
  # whatever the dirty stop left behind.
  kill -9 "$daemon" 2> /dev/null || true
  wait "$daemon" 2> /dev/null || true
  rm -f "$sock"
  "$crusaded" --socket "$sock" --spool "$spool" --workers 2 \
    >> "$log" 2>&1 &
  daemon=$!
  wait_socket "$sock"
  "$crusade" stats --socket "$sock" > "$workdir/seed$seed.recovered.json"
  quarantined=$(stats_field "$workdir/seed$seed.recovered.json" \
    spool_quarantined)
  "$crusade" submit "$spec" --socket "$sock" --kind lint --wait > /dev/null
  "$crusade" shutdown --socket "$sock" > /dev/null
  wait "$daemon" || true
  echo "    seed $seed: $jobs jobs, $typed_failures typed failures," \
    "$quarantined quarantined at restart, daemon recovered and drained"
  total_jobs=$((total_jobs + jobs))
  total_typed_failures=$((total_typed_failures + typed_failures))
done

# --- restart storm: durability across repeated SIGKILL ----------------------
# One spool, $storm_cycles kill -9/restart cycles.  The contract (DESIGN.md
# §17.4): no job ever admitted goes missing, and any job that reached a
# terminal state keeps answering `crusade status <id>` / `result <id>` with
# BIT-IDENTICAL bytes in every later incarnation — re-execution would change
# them, so identity doubles as the zero-duplicate-execution proof.
storm_cycles=3
sock="$workdir/storm.sock"
spool="$workdir/storm.spool"
log="$workdir/storm.log"
snap="$workdir/storm-snap"
rm -rf "$sock" "$spool" "$snap"
mkdir -p "$snap"
: > "$workdir/storm.ids"
: > "$workdir/storm.terminal"
echo "--- restart storm: $storm_cycles SIGKILL/restart cycles on one spool"
for cycle in $(seq 1 "$storm_cycles"); do
  rm -f "$sock"
  "$crusaded" --socket "$sock" --spool "$spool" --workers 2 \
    >> "$log" 2>&1 &
  daemon=$!
  wait_socket "$sock"

  # Zero lost: every id ever admitted still answers after the crash.
  while read -r id; do
    [[ -n "$id" ]] || continue
    if ! "$crusade" status "$id" --socket "$sock" > /dev/null 2>&1; then
      echo "chaos_soak.sh: storm cycle $cycle LOST job $id" >&2
      kill -9 "$daemon" 2> /dev/null || true
      exit 1
    fi
  done < "$workdir/storm.ids"

  # Zero duplicated: terminal answers are bit-identical across the restart.
  while read -r id; do
    [[ -n "$id" ]] || continue
    "$crusade" status "$id" --socket "$sock" > "$snap/$id.status.now"
    "$crusade" result "$id" --socket "$sock" > "$snap/$id.result.now"
    for kind in status result; do
      if ! cmp -s "$snap/$id.$kind" "$snap/$id.$kind.now"; then
        echo "chaos_soak.sh: storm cycle $cycle: job $id $kind CHANGED" \
          "across restart (duplicate execution?)" >&2
        diff "$snap/$id.$kind" "$snap/$id.$kind.now" >&2 || true
        kill -9 "$daemon" 2> /dev/null || true
        exit 1
      fi
    done
  done < "$workdir/storm.terminal"

  # Two jobs drained to terminal (snapshotted), one left mid-flight for the
  # crash to interrupt.
  for i in 1 2; do
    out=$("$crusade" submit "$spec" --socket "$sock" --kind lint \
      --wait 2>&1)
    id=$(printf '%s' "$out" | sed -n 's/^{"id":\([0-9]*\).*/\1/p' \
      | head -1)
    if [[ -z "$id" ]]; then
      echo "chaos_soak.sh: storm cycle $cycle submit $i gave no id: $out" >&2
      kill -9 "$daemon" 2> /dev/null || true
      exit 1
    fi
    echo "$id" >> "$workdir/storm.ids"
    echo "$id" >> "$workdir/storm.terminal"
    "$crusade" status "$id" --socket "$sock" > "$snap/$id.status"
    "$crusade" result "$id" --socket "$sock" > "$snap/$id.result"
  done
  out=$("$crusade" submit "$spec" --socket "$sock" 2>&1) || true
  id=$(printf '%s' "$out" | sed -n 's/^{"id":\([0-9]*\).*/\1/p' \
    | head -1)
  [[ -n "$id" ]] && echo "$id" >> "$workdir/storm.ids"

  kill -9 "$daemon" 2> /dev/null || true
  wait "$daemon" 2> /dev/null || true
done

# Final calm incarnation drains the survivors and shuts down cleanly.
rm -f "$sock"
"$crusaded" --socket "$sock" --spool "$spool" --workers 2 >> "$log" 2>&1 &
daemon=$!
wait_socket "$sock"
storm_jobs=$(sort -u "$workdir/storm.ids" | wc -l)
while read -r id; do
  [[ -n "$id" ]] || continue
  if ! timeout 120 "$crusade" result "$id" --socket "$sock" --wait \
    > /dev/null 2>&1; then
    echo "chaos_soak.sh: storm survivor $id never reached terminal" >&2
    kill -9 "$daemon" 2> /dev/null || true
    exit 1
  fi
done < <(sort -u "$workdir/storm.ids")
"$crusade" shutdown --socket "$sock" > /dev/null
wait "$daemon" || true
echo "    storm: $storm_jobs jobs across $storm_cycles kill/restart cycles," \
  "zero lost, terminal answers bit-identical"

echo "chaos_soak.sh PASS: $seeds seeds, $total_jobs jobs under injected" \
  "faults, $total_typed_failures typed failures, zero silent losses, zero" \
  "wedges, every restart recovered clean, restart storm bit-identical"
