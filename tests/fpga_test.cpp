// Unit tests for the FPGA substrate: device grid, netlists, placement,
// routing and the delay-management experiment.
#include <gtest/gtest.h>

#include "fpga/delay.hpp"
#include "fpga/placer.hpp"
#include "tgff/circuits.hpp"

namespace crusade {
namespace {

TEST(DeviceTest, GeometryAndIndexing) {
  Device d(4, 5, 4, 64, 4, 1);
  EXPECT_EQ(d.capacity(), 20);
  const Site s{2, 3};
  EXPECT_EQ(d.site_index(s), 13);
  const Site back = d.site_at(13);
  EXPECT_EQ(back.row, 2);
  EXPECT_EQ(back.col, 3);
  EXPECT_FALSE(d.contains({4, 0}));
  EXPECT_THROW(d.site_at(20), Error);
}

TEST(DeviceTest, ForCircuitLeavesHeadroom) {
  const Device d = Device::for_circuit(70);
  EXPECT_GE(d.capacity(), 100);  // 70 / 0.7
}

TEST(NetlistTest, RandomIsAcyclicAndConnected) {
  Rng rng(11);
  NetlistConfig cfg;
  cfg.cells = 60;
  const Netlist n = Netlist::random("t", cfg, rng);
  EXPECT_EQ(n.cell_count(), 60);
  EXPECT_GT(n.external_pins(), 0);
  std::vector<bool> driven(60, false);
  for (const Net& net : n.nets()) {
    for (int s : net.sinks) {
      EXPECT_GT(s, net.driver);  // acyclic by construction
      driven[s] = true;
    }
  }
  for (int c = 1; c < 60; ++c) EXPECT_TRUE(driven[c]) << "orphan cell " << c;
}

TEST(NetlistTest, ConstructorValidates) {
  EXPECT_THROW(Netlist("bad", 2, {Net{1, {0}}}, 1), Error);  // sink <= driver
  EXPECT_THROW(Netlist("bad", 2, {Net{0, {}}}, 1), Error);   // no sinks
}

TEST(PlacerTest, PlacesAllCellsWithoutOverlap) {
  const Device d(8, 8, 4, 64, 4, 1);
  Rng rng(3);
  NetlistConfig cfg;
  cfg.cells = 30;
  const Netlist n = Netlist::random("t", cfg, rng);
  std::vector<bool> occupied(d.capacity(), false);
  const auto placement = Placer::place(d, n, occupied, rng);
  ASSERT_EQ(placement.size(), 30u);
  std::vector<bool> seen(d.capacity(), false);
  for (int site : placement) {
    ASSERT_GE(site, 0);
    ASSERT_LT(site, d.capacity());
    ASSERT_FALSE(seen[site]) << "two cells on one site";
    seen[site] = true;
  }
}

TEST(PlacerTest, SharedDeviceRespectsOccupancy) {
  const Device d(6, 6, 4, 48, 4, 1);
  Rng rng(4);
  NetlistConfig cfg;
  cfg.cells = 16;
  const Netlist a = Netlist::random("a", cfg, rng);
  const Netlist b = Netlist::random("b", cfg, rng);
  std::vector<bool> occupied(d.capacity(), false);
  const auto pa = Placer::place(d, a, occupied, rng);
  const auto pb = Placer::place(d, b, occupied, rng);
  for (int sa : pa)
    for (int sb : pb) EXPECT_NE(sa, sb);
}

TEST(PlacerTest, ThrowsWhenFull) {
  const Device d(3, 3, 4, 24, 4, 1);
  Rng rng(5);
  NetlistConfig cfg;
  cfg.cells = 10;  // 10 > 9 sites
  const Netlist n = Netlist::random("t", cfg, rng);
  std::vector<bool> occupied(d.capacity(), false);
  EXPECT_THROW(Placer::place(d, n, occupied, rng), Error);
}

TEST(RouterTest, UncongestedDelaysScaleWithDistance) {
  const Device d(10, 10, 100, 80, 4, 1);  // huge channels: no congestion
  Netlist n("two", 2, {Net{0, {1}}}, 2);
  std::vector<int> placement = {d.site_index({0, 0}), d.site_index({0, 5})};
  Router router(d);
  router.route(n, placement);
  const RouteResult r = router.finalize(n, placement);
  ASSERT_TRUE(r.routable);
  // 5 horizontal segments at nominal 1ns + 1 switch hop.
  EXPECT_EQ(r.sink_delay[0][0], 6);
}

TEST(RouterTest, CongestionRaisesDelay) {
  const Device d(6, 6, 2, 48, 4, 1);
  Netlist n("two", 2, {Net{0, {1}}}, 2);
  std::vector<int> placement = {d.site_index({2, 0}), d.site_index({2, 5})};
  Router light(d);
  light.route(n, placement);
  const TimeNs base = light.finalize(n, placement).sink_delay[0][0];
  Router heavy(d);
  heavy.route(n, placement);
  for (int i = 0; i < 6; ++i)
    heavy.route_connection({2, 0}, {2, 5});  // same row: pile on the load
  const RouteResult hr = heavy.finalize(n, placement);
  if (hr.routable) {
    EXPECT_GT(hr.sink_delay[0][0], base);
  }
}

TEST(RouterTest, OverflowMakesUnroutable) {
  const Device d(4, 4, 1, 32, 4, 1);
  Netlist n("two", 2, {Net{0, {1}}}, 2);
  std::vector<int> placement = {d.site_index({1, 0}), d.site_index({1, 3})};
  Router router(d);
  router.route(n, placement);
  for (int i = 0; i < 30; ++i) router.route_connection({1, 0}, {1, 3});
  EXPECT_FALSE(router.finalize(n, placement).routable);
}

TEST(CriticalPathTest, LongestPathThroughLevels) {
  const Device d(8, 8, 100, 64, 4, 1);
  // 0 -> 1 -> 2 and 0 -> 2: the two-hop path dominates.
  Netlist n("chain", 3, {Net{0, {1}}, Net{1, {2}}, Net{0, {2}}}, 3);
  std::vector<int> placement = {d.site_index({0, 0}), d.site_index({0, 1}),
                                d.site_index({0, 2})};
  Router router(d);
  router.route(n, placement);
  const RouteResult routes = router.finalize(n, placement);
  const TimeNs cp = critical_path(d, n, routes);
  // 3 cell delays (4ns each) + two 1-unit hops (2ns each incl switch).
  EXPECT_EQ(cp, 3 * 4 + 2 * 2);
}

TEST(DelaySweepTest, BaselineRoutableAndMonotoneFill) {
  const Netlist circuit = make_circuit(CircuitSpec{"cvs1", 18});
  const auto sweep =
      measure_delay_sweep(circuit, {0.70, 0.85, 1.00}, 0.8, 42);
  ASSERT_EQ(sweep.size(), 3u);
  ASSERT_TRUE(sweep[0].routable);
  // Incremental fill: peak channel load can only grow.
  EXPECT_LE(sweep[0].peak_channel_load, sweep[1].peak_channel_load);
  EXPECT_LE(sweep[1].peak_channel_load, sweep[2].peak_channel_load);
  // Delay at full utilization is no better than baseline (when routable).
  if (sweep[2].routable) {
    EXPECT_GE(sweep[2].delay, sweep[0].delay);
  }
}

TEST(DelaySweepTest, RejectsBadParameters) {
  const Netlist circuit = make_circuit(CircuitSpec{"cvs1", 18});
  EXPECT_THROW(measure_delay_sweep(circuit, {}, 0.8, 1), Error);
  EXPECT_THROW(measure_delay_sweep(circuit, {0.9, 0.7}, 0.8, 1), Error);
  EXPECT_THROW(measure_delay_sweep(circuit, {0.7}, 1.5, 1), Error);
}

TEST(DelayManagementTest, PaperDefaultsAndCaps) {
  DelayManagement dm;
  EXPECT_DOUBLE_EQ(dm.eruf, 0.70);
  EXPECT_DOUBLE_EQ(dm.epuf, 0.80);
  EXPECT_EQ(dm.usable_pfus(1024), 716);
  EXPECT_EQ(dm.usable_pins(120), 96);
}

}  // namespace
}  // namespace crusade
