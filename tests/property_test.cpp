// Property-based sweeps (TEST_P): invariants that must hold across seeds
// and parameter grids — exact periodic math vs brute force, generator
// validity, end-to-end architecture/schedule invariants, and delay-sweep
// monotonicity.
#include <gtest/gtest.h>

#include "core/crusade.hpp"
#include "fpga/delay.hpp"
#include "tgff/circuits.hpp"
#include "tgff/generator.hpp"

namespace crusade {
namespace {

const ResourceLibrary& lib() {
  static const ResourceLibrary l = telecom_1999();
  return l;
}

// --- periodic math vs randomized brute force ---

class PeriodicProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PeriodicProperty, OverlapMatchesBruteForce) {
  Rng rng(GetParam());
  const TimeNs periods[] = {4, 6, 9, 10, 12, 20};
  for (int trial = 0; trial < 400; ++trial) {
    const TimeNs pa = periods[rng.uniform_int(0, 5)];
    const TimeNs pb = periods[rng.uniform_int(0, 5)];
    const TimeNs la = rng.uniform_int(1, pa);
    const TimeNs lb = rng.uniform_int(1, pb);
    const TimeNs sa = rng.uniform_int(0, 2 * pa);
    const TimeNs sb = rng.uniform_int(0, 2 * pb);
    const PeriodicWindow a{sa, sa + la, pa};
    const PeriodicWindow b{sb, sb + lb, pb};

    // Brute force: enumerate instances across three combined cycles so
    // phase wrap-around is fully covered.
    const TimeNs horizon = lcm64(pa, pb);
    bool brute = false;
    for (TimeNs ka = -horizon; ka <= 2 * horizon && !brute; ka += pa)
      for (TimeNs kb = -horizon; kb <= 2 * horizon && !brute; kb += pb)
        if (sa + ka < sb + kb + lb && sb + kb < sa + ka + la) brute = true;
    ASSERT_EQ(periodic_overlap(a, b), brute)
        << "a=[" << sa << "+" << la << ")%" << pa << " b=[" << sb << "+"
        << lb << ")%" << pb;
  }
}

TEST_P(PeriodicProperty, MinShiftIsMinimalAndSufficient) {
  Rng rng(GetParam() ^ 0xabcdef);
  const TimeNs periods[] = {8, 12, 20, 40};
  for (int trial = 0; trial < 300; ++trial) {
    const TimeNs pa = periods[rng.uniform_int(0, 3)];
    const TimeNs pb = periods[rng.uniform_int(0, 3)];
    const TimeNs la = rng.uniform_int(1, pa / 2);
    const TimeNs lb = rng.uniform_int(1, pb / 2);
    const TimeNs sa = rng.uniform_int(0, pa);
    const TimeNs sb = rng.uniform_int(0, pb);
    PeriodicWindow a{sa, sa + la, pa};
    const PeriodicWindow b{sb, sb + lb, pb};
    const TimeNs shift = min_shift_to_avoid(a, b);
    if (shift == kNoTime) {
      // Claimed impossible: combined occupation must exceed the gcd.
      EXPECT_GT(la + lb, std::gcd(pa, pb));
      continue;
    }
    a.start += shift;
    a.finish += shift;
    EXPECT_FALSE(periodic_overlap(a, b));
    if (shift > 0) {
      a.start -= 1;
      a.finish -= 1;
      EXPECT_TRUE(periodic_overlap(a, b)) << "shift not minimal";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeriodicProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// --- generator validity across seeds ---

class GeneratorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorProperty, SpecificationsAlwaysValid) {
  SpecGenerator gen(lib());
  SpecGenConfig cfg;
  cfg.total_tasks = 140;
  cfg.seed = GetParam();
  const Specification spec = gen.generate(cfg);
  ASSERT_NO_THROW(spec.validate(lib().pe_count()));
  EXPECT_EQ(spec.total_tasks(), 140);
  // Hyperperiod stays within the period menu's lcm.
  EXPECT_LE(spec.hyperperiod(), kMinute);
  // Every task must run somewhere and carry sane attributes.
  for (const TaskGraph& g : spec.graphs) {
    for (const Task& t : g.tasks()) {
      bool feasible = false;
      for (PeTypeId pe = 0; pe < lib().pe_count(); ++pe) {
        if (!t.feasible_on(pe)) continue;
        feasible = true;
        EXPECT_GT(t.exec[pe], 0);
        EXPECT_LT(t.exec[pe], g.period() * 4);
      }
      EXPECT_TRUE(feasible);
      EXPECT_GE(t.pfus, 0);
      EXPECT_GE(t.memory.total(), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

// --- end-to-end invariants across seeds ---

class SynthesisProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SynthesisProperty, ArchitectureInvariantsHold) {
  SpecGenerator gen(lib());
  SpecGenConfig cfg;
  cfg.total_tasks = 70;
  cfg.seed = GetParam();
  const Specification spec = gen.generate(cfg);
  const CrusadeResult r = Crusade(spec, lib(), {}).run();
  const FlatSpec flat(spec);
  const DelayManagement delay;

  // 1. Every task allocated to a feasible PE type.
  for (int tid = 0; tid < flat.task_count(); ++tid) {
    const int pe = r.arch.cluster_pe[r.task_cluster[tid]];
    ASSERT_GE(pe, 0);
    EXPECT_TRUE(flat.task(tid).feasible_on(r.arch.pes[pe].type));
  }
  // 2. ERUF/EPUF caps hold per mode on programmable devices (§4.5).
  for (const PeInstance& inst : r.arch.pes) {
    if (!inst.alive()) continue;
    const PeType& type = lib().pe(inst.type);
    if (!type.is_programmable()) continue;
    for (const Mode& m : inst.modes) {
      EXPECT_LE(m.pfus_used, delay.usable_pfus(type.pfus));
      EXPECT_LE(m.pins_used, delay.usable_pins(type.pins));
    }
  }
  // 3. Multi-mode devices host pairwise-compatible graphs across modes.
  if (spec.compatibility) {
    for (const PeInstance& inst : r.arch.pes) {
      for (std::size_t m1 = 0; m1 < inst.modes.size(); ++m1)
        for (std::size_t m2 = m1 + 1; m2 < inst.modes.size(); ++m2)
          for (int g1 : inst.modes[m1].graphs)
            for (int g2 : inst.modes[m2].graphs)
              EXPECT_TRUE(spec.compatibility->compatible(g1, g2));
    }
  }
  // 4. Only FPGAs reconfigure at run time.
  for (const PeInstance& inst : r.arch.pes) {
    if (inst.modes.size() > 1) {
      EXPECT_EQ(lib().pe(inst.type).kind, PeKind::Fpga);
    }
  }
  // 5. Cost components are non-negative and sum to total.
  EXPECT_GE(r.cost.pes, 0);
  EXPECT_GE(r.cost.links, 0);
  EXPECT_GE(r.cost.reconfig_interface, 0);
  EXPECT_NEAR(r.cost.total(),
              r.cost.pes + r.cost.memory + r.cost.links +
                  r.cost.reconfig_interface + r.cost.spares,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesisProperty,
                         ::testing::Values(101u, 202u, 303u, 404u));

// --- delay sweep monotonicity across circuits ---

class DelayProperty : public ::testing::TestWithParam<int> {};

TEST_P(DelayProperty, PeakLoadMonotoneInUtilization) {
  const CircuitSpec spec = table1_circuits()[GetParam()];
  const Netlist circuit = make_circuit(spec);
  const auto sweep =
      measure_delay_sweep(circuit, {0.70, 0.80, 0.90, 1.00}, 0.8, 13);
  ASSERT_TRUE(sweep.front().routable) << spec.name;
  for (std::size_t i = 1; i < sweep.size(); ++i)
    EXPECT_GE(sweep[i].peak_channel_load, sweep[i - 1].peak_channel_load);
  // Delay at the top of the sweep does not beat the 70% baseline.
  if (sweep.back().routable) {
    EXPECT_GE(sweep.back().delay, sweep.front().delay);
  }
}

INSTANTIATE_TEST_SUITE_P(Circuits, DelayProperty,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace crusade
