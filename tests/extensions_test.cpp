// Tests for the release extensions: power model, power cap, schedule dump,
// device evacuation and the shipped data files.
#include <gtest/gtest.h>

#include <fstream>

#include "core/crusade.hpp"
#include "core/report.hpp"
#include "core/field_upgrade.hpp"
#include "graph/spec_io.hpp"
#include "tgff/generator.hpp"

namespace crusade {
namespace {

const ResourceLibrary& lib() {
  static const ResourceLibrary l = telecom_1999();
  return l;
}

TEST(PowerModelTest, LibraryCarriesPowerRatings) {
  for (const PeType& pe : lib().pes())
    EXPECT_GT(pe.power_mw, 0) << pe.name;
  // Faster CPUs draw more.
  EXPECT_GT(lib().pe(lib().find_pe("MC68060")).power_mw,
            lib().pe(lib().find_pe("MC68360")).power_mw);
}

TEST(PowerModelTest, ArchitecturePowerSumsLivePes) {
  Architecture arch(&lib(), 2, 0);
  const int a = arch.add_pe(lib().find_pe("MC68360"));
  arch.add_pe(lib().find_pe("MC68060"));  // dead: never hosts a cluster
  arch.place_cluster(0, a, 0, 0, 4 << 20, 0, 0, 0);
  const double expected =
      lib().pe(lib().find_pe("MC68360")).power_mw + 1.0;  // 4MB DRAM ~ 1mW
  EXPECT_NEAR(arch.power_mw(), expected, 1e-9);
}

TEST(PowerModelTest, ResultReportsPower) {
  SpecGenerator gen(lib());
  SpecGenConfig cfg;
  cfg.total_tasks = 40;
  cfg.seed = 17;
  const Specification spec = gen.generate(cfg);
  const CrusadeResult r = Crusade(spec, lib(), {}).run();
  EXPECT_GT(r.power_mw, 0);
  EXPECT_NE(describe_result(r).find("power:"), std::string::npos);
}

TEST(PowerModelTest, PowerCapSteersAllocation) {
  SpecGenerator gen(lib());
  SpecGenConfig cfg;
  cfg.total_tasks = 50;
  cfg.seed = 18;
  const Specification spec = gen.generate(cfg);
  const CrusadeResult unconstrained = Crusade(spec, lib(), {}).run();
  CrusadeParams capped;
  // A cap below the unconstrained draw (but generous enough to be reachable)
  // must not be exceeded when alternatives exist.
  capped.alloc.power_cap_mw = unconstrained.power_mw * 0.9;
  const CrusadeResult r = Crusade(spec, lib(), capped).run();
  // The heuristic prefers under-cap candidates; the result should not blow
  // far past the unconstrained baseline.
  EXPECT_LT(r.power_mw, unconstrained.power_mw * 1.5);
}

TEST(ScheduleDumpTest, ListsResourcesAndWindows) {
  SpecGenerator gen(lib());
  SpecGenConfig cfg;
  cfg.total_tasks = 30;
  cfg.seed = 19;
  const Specification spec = gen.generate(cfg);
  const CrusadeResult r = Crusade(spec, lib(), {}).run();
  const FlatSpec flat(spec);
  const std::string dump = dump_schedule(r, flat);
  EXPECT_NE(dump.find("#"), std::string::npos);   // resource headers
  EXPECT_NE(dump.find("["), std::string::npos);   // windows
  EXPECT_NE(dump.find("@"), std::string::npos);   // periods
  EXPECT_NE(dump.find("task "), std::string::npos);
  // Truncation honours max_rows.
  const std::string tiny = dump_schedule(r, flat, 3);
  EXPECT_LT(tiny.size(), dump.size());
}

TEST(EvacuationTest, ConsolidatesUnderfilledDevices) {
  // Two half-empty FPGAs hosting the same graph must fold into one.
  Specification spec;
  TaskGraph g("g", 100 * kMillisecond);
  for (int i = 0; i < 2; ++i) {
    Task t;
    t.name = "t" + std::to_string(i);
    t.exec.assign(lib().pe_count(), kNoTime);
    t.exec[lib().find_pe("AT6005")] = kMillisecond;
    t.pfus = 200;
    t.pins = 20;
    t.deadline = 100 * kMillisecond;
    g.add_task(std::move(t));
  }
  spec.graphs.push_back(std::move(g));
  const FlatSpec flat(spec);
  const auto clusters = cluster_tasks(flat, lib(), ClusteringParams{});
  ASSERT_EQ(clusters.size(), 2u);  // no edges: two singleton clusters

  Allocator allocator(flat, lib(), nullptr, AllocParams{});
  AllocationOutcome outcome;
  outcome.task_cluster = task_to_cluster(clusters, flat.task_count());
  outcome.arch = Architecture(&lib(), 2, 0);
  const PeTypeId at = lib().find_pe("AT6005");
  // Deliberately wasteful: one device per cluster.
  for (int c = 0; c < 2; ++c) {
    const int pe = outcome.arch.add_pe(at);
    outcome.arch.place_cluster(c, pe, 0, 0, 0, clusters[c].gates,
                               clusters[c].pfus, clusters[c].pins);
  }
  SchedProblem p = make_sched_problem(outcome.arch, flat,
                                      outcome.task_cluster, {}, true);
  outcome.schedule =
      run_list_scheduler(p, scheduling_levels(flat, lib()));
  ASSERT_TRUE(outcome.schedule.feasible);
  const double cost_before = outcome.arch.cost().total();

  const int emptied = allocator.evacuate_devices(outcome, clusters);
  EXPECT_EQ(emptied, 1);
  EXPECT_EQ(outcome.arch.live_pe_count(), 1);
  EXPECT_LT(outcome.arch.cost().total(), cost_before);
  EXPECT_TRUE(outcome.schedule.feasible);
}

TEST(DataFilesTest, ShippedSpecParsesAndSynthesizes) {
  std::ifstream in("data/figure2.spec");
  if (!in) GTEST_SKIP() << "run from the repository root";
  const Specification spec = read_specification(in, lib());
  EXPECT_EQ(spec.graphs.size(), 3u);
  ASSERT_TRUE(spec.compatibility.has_value());
  EXPECT_TRUE(spec.compatibility->compatible(1, 2));
  const CrusadeResult r = Crusade(spec, lib(), {}).run();
  EXPECT_TRUE(r.feasible);
}

TEST(FieldUpgradeTest, SameSpecAlwaysFitsItsOwnArchitecture) {
  SpecGenerator gen(lib());
  SpecGenConfig cfg;
  cfg.total_tasks = 60;
  cfg.seed = 27;
  const Specification spec = gen.generate(cfg);
  const CrusadeResult deployed = Crusade(spec, lib(), {}).run();
  ASSERT_TRUE(deployed.feasible);
  const FieldUpgradeResult upgrade =
      try_field_upgrade(spec, lib(), deployed.arch);
  EXPECT_TRUE(upgrade.accommodated);
  // No hardware change: the device set is identical.
  EXPECT_EQ(upgrade.arch.pes.size(), deployed.arch.pes.size());
  for (std::size_t pe = 0; pe < deployed.arch.pes.size(); ++pe)
    EXPECT_EQ(upgrade.arch.pes[pe].type, deployed.arch.pes[pe].type);
}

TEST(FieldUpgradeTest, BugFixSizedChangeFits) {
  SpecGenerator gen(lib());
  SpecGenConfig cfg;
  cfg.total_tasks = 60;
  cfg.seed = 28;
  Specification spec = gen.generate(cfg);
  const CrusadeResult deployed = Crusade(spec, lib(), {}).run();
  ASSERT_TRUE(deployed.feasible);
  // A field bug fix: one task's logic shrinks slightly and runs 10% slower.
  Task& patched = spec.graphs[0].task(0);
  for (TimeNs& t : patched.exec)
    if (t != kNoTime) t += t / 10;
  const FieldUpgradeResult upgrade =
      try_field_upgrade(spec, lib(), deployed.arch);
  EXPECT_TRUE(upgrade.accommodated);
}

TEST(FieldUpgradeTest, OversizedFeatureIsRejected) {
  SpecGenerator gen(lib());
  SpecGenConfig cfg;
  cfg.total_tasks = 40;
  cfg.seed = 29;
  Specification spec = gen.generate(cfg);
  const CrusadeResult deployed = Crusade(spec, lib(), {}).run();
  ASSERT_TRUE(deployed.feasible);
  // A feature addition far beyond the board: quadruple the workload.
  SpecGenConfig big = cfg;
  big.total_tasks = 160;
  big.seed = 30;
  const Specification feature = gen.generate(big);
  const FieldUpgradeResult upgrade =
      try_field_upgrade(feature, lib(), deployed.arch);
  EXPECT_FALSE(upgrade.accommodated);
  EXPECT_GT(upgrade.unplaceable_clusters + (upgrade.schedule.feasible ? 0 : 1),
            0);
}

}  // namespace
}  // namespace crusade
