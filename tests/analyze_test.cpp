// Static analyzer (src/analyze, `crusade lint`) tests.
//
// The table-driven block feeds one minimal spec text per catalog diagnostic
// and checks the analyzer reports exactly that ID anchored to the expected
// source line.  The soundness blocks check the two claims the analyzer
// makes: every error diagnostic is a necessary condition for feasibility
// (preflight never rejects a synthesizable spec), and dominated-resource
// pruning never changes feasibility or final cost.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>

#include "analyze/analyzer.hpp"
#include "core/crusade.hpp"
#include "example_specs.hpp"
#include "graph/spec_io.hpp"
#include "tgff/generator.hpp"

namespace crusade {
namespace {

const ResourceLibrary& lib() {
  static const ResourceLibrary l = telecom_1999();
  return l;
}

/// Parses spec text WITHOUT the parser's validation pass (the lint
/// configuration) and analyzes it with line anchors.
AnalysisReport lint_text(const std::string& text) {
  SpecSourceMap source;
  SpecReadOptions read_options;
  read_options.source_map = &source;
  read_options.validate = false;
  std::istringstream in(text);
  const Specification spec = read_specification(in, lib(), read_options);
  AnalyzeOptions options;
  options.source = &source;
  return analyze_specification(spec, lib(), options);
}

const Diagnostic* find_id(const AnalysisReport& report,
                          const std::string& id) {
  for (const Diagnostic& d : report.diagnostics)
    if (d.id == id) return &d;
  return nullptr;
}

// --- table-driven: one spec text per diagnostic ID -----------------------

struct LintCase {
  const char* id;
  int line;  ///< expected anchor; 0 = library-level (no source line)
  Severity severity;
  const char* text;
};

TEST(AnalyzeTest, EveryTextReachableDiagnosticFiresAtItsLine) {
  // Line numbers are 1-based over the literal text below; the first line of
  // each raw string is empty (the newline right after the opening quote),
  // so directives start at line 2.
  const LintCase cases[] = {
      {"A001", 2, Severity::Error, R"(
graph g period 10ms
task a deadline 10ms exec MC68360=1ms
task b exec MC68360=1ms
edge a b 100
edge b a 100
)"},
      {"A003", 5, Severity::Warning, R"(
graph g period 10ms
task a deadline 10ms exec MC68360=1ms
task b exec MC68360=1ms
task c exec MC68360=1ms
edge a b 100
)"},
      {"A004", 2, Severity::Error, R"(
graph g period 0ms
task a deadline 10ms exec MC68360=1ms
)"},
      {"A005", 3, Severity::Warning, R"(
graph g period 10ms
task a deadline 15ms exec MC68360=1ms
)"},
      {"A006", 2, Severity::Error, R"(
graph g period 10ms
)"},
      {"A007", 6, Severity::Note, R"(
graph g period 10ms
task a deadline 10ms exec MC68360=1ms
task b exec MC68360=1ms
edge a b 100
edge a b 100
)"},
      {"A010", 2, Severity::Warning, R"(
graph g period 10ms
task a deadline 10ms exec MC68360=5ms
task b deadline 10ms exec MC68360=5ms
task c deadline 10ms exec MC68360=4ms
)"},
      {"A011", 3, Severity::Error, R"(
graph g period 10ms
task a deadline 1ns exec MC68360=1ms
)"},
      {"A012", 4, Severity::Error, R"(
graph g period 5ms
task x deadline 5ms exec MC68360=4ms
task y exec MC68360=3ms
edge x y 500
)"},
      // Restricting every task to one CPU type leaves the rest of the PE
      // library vacuously dominated along its cost/capacity axes.
      {"A020", 0, Severity::Warning, R"(
graph g period 100ms
task a deadline 100ms exec MC68360=1ms
)"},
      {"A030", 9, Severity::Warning, R"(
graph g0 period 10ms
task a deadline 10ms exec MC68360=9ms

graph g1 period 10ms
task b deadline 10ms exec MC68360=9ms

# densities 0.9 + 0.9 > 1: the graphs cannot avoid overlapping
compatible g0 g1
)"},
      {"A031", 2, Severity::Warning, R"(
boot_requirement 1ns
graph g0 period 100ms
task a deadline 100ms exec MC68360=1ms
graph g1 period 100ms
task b deadline 100ms exec MC68360=1ms
compatible g0 g1
)"},
  };

  for (const LintCase& c : cases) {
    SCOPED_TRACE(c.id);
    const AnalysisReport report = lint_text(c.text);
    const Diagnostic* d = find_id(report, c.id);
    ASSERT_NE(d, nullptr) << report.summary();
    EXPECT_EQ(d->line, c.line) << d->message;
    EXPECT_EQ(d->severity, c.severity) << d->message;
    EXPECT_FALSE(d->message.empty());
    EXPECT_FALSE(d->paper_ref.empty());
  }
}

TEST(AnalyzeTest, ParseErrorDiagnosticRecoversTheLine) {
  std::istringstream in("spec t\ngraph g period 10ms\ntask a nonsense\n");
  try {
    read_specification(in, lib());
    FAIL() << "parser accepted nonsense";
  } catch (const Error& e) {
    const Diagnostic d = parse_error_diagnostic(e);
    EXPECT_EQ(d.id, "A000");
    EXPECT_EQ(d.severity, Severity::Error);
    EXPECT_EQ(d.line, 3);
    EXPECT_NE(d.message.find("line 3"), std::string::npos);
  }
}

TEST(AnalyzeTest, CleanSpecsLintClean) {
  for (const Specification& spec :
       {quickstart_spec(lib()), base_station_spec(lib())}) {
    const AnalysisReport report = analyze_specification(spec, lib());
    EXPECT_FALSE(report.has_errors()) << report.summary();
  }
}

// --- in-memory-only diagnostics ------------------------------------------

TEST(AnalyzeTest, DanglingExclusionIndexIsReported) {
  Specification spec = quickstart_spec(lib());
  spec.graphs[0].task(0).exclusions.push_back(9999);
  const AnalysisReport report = analyze_specification(spec, lib());
  const Diagnostic* d = find_id(report, "A002");
  ASSERT_NE(d, nullptr) << report.summary();
  EXPECT_EQ(d->severity, Severity::Error);
}

TEST(AnalyzeTest, ExecVectorArityMismatchIsReported) {
  Specification spec = quickstart_spec(lib());
  spec.graphs[0].task(0).exec.resize(2);
  const AnalysisReport report = analyze_specification(spec, lib());
  const Diagnostic* d = find_id(report, "A022");
  ASSERT_NE(d, nullptr) << report.summary();
  EXPECT_EQ(d->severity, Severity::Error);
}

TEST(AnalyzeTest, TaskFeasibleNowhereIsReported) {
  Specification spec = quickstart_spec(lib());
  Task& victim = spec.graphs[0].task(0);
  std::fill(victim.exec.begin(), victim.exec.end(), kNoTime);
  const AnalysisReport report = analyze_specification(spec, lib());
  const Diagnostic* d = find_id(report, "A022");
  ASSERT_NE(d, nullptr) << report.summary();
  EXPECT_NE(d->message.find("no PE"), std::string::npos);
}

TEST(AnalyzeTest, CompatibilityArityMismatchIsReported) {
  Specification spec = quickstart_spec(lib());
  spec.compatibility =
      CompatibilityMatrix(static_cast<int>(spec.graphs.size()) + 3);
  const AnalysisReport report = analyze_specification(spec, lib());
  const Diagnostic* d = find_id(report, "A030");
  ASSERT_NE(d, nullptr) << report.summary();
  EXPECT_EQ(d->severity, Severity::Error);
}

TEST(AnalyzeTest, DominatedLinkIsReportedWithACustomLibrary) {
  ResourceLibrary custom = telecom_1999();
  // Clone the first link, then make the clone strictly worse on cost: the
  // clone is dominated, the original survives.
  LinkType worse = custom.link(0);
  worse.name = "worse-" + worse.name;
  worse.cost += 100;
  custom.add_link(worse);
  const AnalysisReport report =
      analyze_specification(quickstart_spec(custom), custom);
  const Diagnostic* d = find_id(report, "A021");
  ASSERT_NE(d, nullptr) << report.summary();
  EXPECT_NE(d->message.find("worse-"), std::string::npos);
  ASSERT_EQ(static_cast<int>(report.dominated_links.size()),
            custom.link_count());
  EXPECT_TRUE(report.dominated_links.back());
  EXPECT_FALSE(report.dominated_links.front());
}

TEST(AnalyzeTest, ExactDuplicatePeKeepsTheLowerIndex) {
  ResourceLibrary custom = telecom_1999();
  PeType clone = custom.pe(0);
  clone.name = "clone-" + clone.name;
  custom.add_pe(clone);
  // Duplicate every task's exec/preference entry so the clone is exactly as
  // able as the original.
  Specification spec = quickstart_spec(telecom_1999());
  for (TaskGraph& g : spec.graphs)
    for (int t = 0; t < g.task_count(); ++t) {
      g.task(t).exec.push_back(g.task(t).exec[0]);
      if (!g.task(t).preference.empty())
        g.task(t).preference.push_back(g.task(t).preference[0]);
    }
  const AnalysisReport report = analyze_specification(spec, custom);
  ASSERT_EQ(static_cast<int>(report.dominated_pes.size()), custom.pe_count());
  // The tie breaks toward the earlier entry: the clone (last) is pruned,
  // the original (first) never is.
  EXPECT_TRUE(report.dominated_pes.back());
  EXPECT_FALSE(report.dominated_pes.front());
}

// --- report plumbing ------------------------------------------------------

TEST(AnalyzeTest, CatalogCoversEveryEmittedIdAndSeveritiesPartition) {
  std::set<std::string> catalog_ids;
  for (const DiagnosticInfo& info : diagnostic_catalog()) {
    EXPECT_TRUE(catalog_ids.insert(info.id).second)
        << "duplicate catalog id " << info.id;
    EXPECT_NE(std::string(info.title), "");
    EXPECT_NE(std::string(info.paper_ref), "");
  }
  // Spot-check the IDs the rest of the suite relies on.
  for (const char* id : {"A000", "A001", "A010", "A020", "A030", "A031"})
    EXPECT_TRUE(catalog_ids.count(id)) << id;

  // Everything the analyzer emitted across this suite's specimen inputs
  // must be a cataloged ID.
  const AnalysisReport report = lint_text(R"(
graph g period 0ms
)");
  for (const Diagnostic& d : report.diagnostics)
    EXPECT_TRUE(catalog_ids.count(d.id)) << d.id;
}

TEST(AnalyzeTest, JsonAndSummaryCarryTheDiagnostics) {
  const AnalysisReport report = lint_text(R"(
graph g period 10ms
task a deadline 1ns exec MC68360=1ms
)");
  ASSERT_TRUE(report.has_errors());
  EXPECT_EQ(report.count(Severity::Error), report.count_id("A011"));
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"A011\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":3"), std::string::npos);
  const std::string text = report.summary("spec.txt ");
  EXPECT_NE(text.find("spec.txt line 3: error: [A011]"), std::string::npos);
}

// --- preflight wiring -----------------------------------------------------

TEST(AnalyzeTest, PreflightTurnsLintErrorsIntoHonestInfeasibility) {
  Specification spec = quickstart_spec(lib());
  spec.graphs[0].task(spec.graphs[0].task_count() - 1).deadline = 1;
  const CrusadeResult r = Crusade(spec, lib(), {}).run();
  EXPECT_FALSE(r.feasible);
  EXPECT_TRUE(r.preflight.has_errors());
  ASSERT_FALSE(r.diagnosis.preflight_errors.empty());
  // Preflight stopped before any search: nothing was allocated.
  EXPECT_EQ(r.pe_count, 0);
}

TEST(AnalyzeTest, PreflightOffPreservesTheOldPath) {
  Specification spec = quickstart_spec(lib());
  spec.graphs[0].task(spec.graphs[0].task_count() - 1).deadline = 1;
  CrusadeParams params;
  params.preflight = false;
  const CrusadeResult r = Crusade(spec, lib(), params).run();
  EXPECT_FALSE(r.feasible);
  EXPECT_TRUE(r.preflight.diagnostics.empty());
  EXPECT_TRUE(r.diagnosis.preflight_errors.empty());
}

// --- pruning soundness ----------------------------------------------------

/// Pruning dominated resources must never change the verdict; on a library
/// with nothing to prune the masks are empty, so the search trajectory —
/// and therefore the money — must match exactly too.
void expect_prune_is_sound(const Specification& spec,
                           const ResourceLibrary& library,
                           const std::string& context) {
  CrusadeParams with;
  with.preflight_prune = true;
  CrusadeParams without;
  without.preflight_prune = false;
  const CrusadeResult a = Crusade(spec, library, with).run();
  const CrusadeResult b = Crusade(spec, library, without).run();
  EXPECT_EQ(a.feasible, b.feasible) << context;
  EXPECT_DOUBLE_EQ(a.cost.total(), b.cost.total()) << context;
}

TEST(AnalyzeTest, PruningSoundOnPaperExamples) {
  expect_prune_is_sound(quickstart_spec(lib()), lib(), "quickstart");
  expect_prune_is_sound(base_station_spec(lib()), lib(), "base station");
}

TEST(AnalyzeTest, PruningSoundOnSyntheticWorkloadWithDuplicateLibrary) {
  // Inflate the library with a strictly dominated PE and link so pruning
  // provably has something to remove.  The guarantee pruning makes is that
  // the search behaves exactly as if the dominated entries had never been
  // in the catalog — so the pruned run must reproduce the clean-library
  // verdict and cost bit-for-bit.  (The *unpruned* run on the inflated
  // catalog may legally land on a slightly different local optimum: the
  // extra entries perturb the heuristic's trajectory even when they never
  // appear in the final architecture.  Only feasibility must agree there.)
  ResourceLibrary custom = telecom_1999();
  PeType worse_pe = custom.pe(0);
  worse_pe.name = "worse-" + worse_pe.name;
  worse_pe.cost += 500;
  custom.add_pe(worse_pe);
  LinkType worse_link = custom.link(0);
  worse_link.name = "worse-" + worse_link.name;
  worse_link.cost += 500;
  custom.add_link(worse_link);

  SpecGenConfig config;
  config.total_tasks = 36;
  config.min_tasks_per_graph = 12;
  config.max_tasks_per_graph = 18;
  config.seed = 7;
  const Specification clean_spec =
      SpecGenerator(telecom_1999()).generate(config);
  const CrusadeResult reference =
      Crusade(clean_spec, telecom_1999(), CrusadeParams{}).run();

  // Mirror each task's entry for the cloned (strictly costlier) PE so the
  // clone is exactly as capable — i.e. provably dominated.
  Specification spec = clean_spec;
  for (TaskGraph& g : spec.graphs)
    for (int t = 0; t < g.task_count(); ++t) {
      g.task(t).exec.push_back(g.task(t).exec[0]);
      if (!g.task(t).preference.empty())
        g.task(t).preference.push_back(g.task(t).preference[0]);
    }

  const AnalysisReport report = analyze_specification(spec, custom);
  EXPECT_GE(report.dominated_pe_count(), 1);
  EXPECT_GE(report.dominated_link_count(), 1);

  CrusadeParams pruned;
  pruned.preflight_prune = true;
  const CrusadeResult on = Crusade(spec, custom, pruned).run();
  EXPECT_EQ(on.feasible, reference.feasible);
  EXPECT_DOUBLE_EQ(on.cost.total(), reference.cost.total())
      << "pruned run must reproduce the clean-library result";

  CrusadeParams unpruned;
  unpruned.preflight_prune = false;
  const CrusadeResult off = Crusade(spec, custom, unpruned).run();
  EXPECT_EQ(off.feasible, on.feasible);
}

}  // namespace
}  // namespace crusade
