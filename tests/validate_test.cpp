// Tests for the independent architecture validator (src/validate) and the
// graceful-degradation diagnostics: the example architectures must verify
// clean, deliberately corrupted results must be caught, and exhausted
// search budgets must come back with a populated diagnosis instead of a
// hang or a bare "infeasible".
#include <gtest/gtest.h>

#include "core/crusade.hpp"
#include "example_specs.hpp"
#include "tgff/profiles.hpp"

namespace crusade {
namespace {

const ResourceLibrary& lib() {
  static const ResourceLibrary l = telecom_1999();
  return l;
}

/// Validator input for a CrusadeResult, mirroring Crusade::run()'s wiring.
ValidationInput input_for(const Specification& spec, const CrusadeResult& r,
                          bool reboots_in_schedule) {
  ValidationInput in;
  in.spec = &spec;
  in.lib = &lib();
  in.arch = &r.arch;
  in.schedule = &r.schedule;
  in.clusters = &r.clusters;
  in.task_cluster = &r.task_cluster;
  in.compat = &r.compat;
  in.boot_time_requirement = spec.boot_time_requirement;
  in.reboots_in_schedule = reboots_in_schedule;
  in.claimed_feasible = r.feasible;
  in.claimed_boot_ok = r.interface_choice.meets_requirement;
  in.reported_cost = &r.cost;
  in.reported_power_mw = r.power_mw;
  return in;
}

bool spec_declared(const Specification& spec, const CrusadeParams& params) {
  return params.enable_reconfig && params.use_spec_compatibility &&
         spec.compatibility.has_value();
}

void expect_clean(const Specification& spec, const CrusadeParams& params,
                  const char* label) {
  const CrusadeResult r = Crusade(spec, lib(), params).run();
  // self_check defaults on: the driver already ran the validator.
  EXPECT_TRUE(r.validation.clean())
      << label << ":\n" << r.validation.summary(50);
  EXPECT_TRUE(r.validation.checked_schedule) << label;
  EXPECT_TRUE(r.feasible) << label;
  // Re-running by hand must agree with the driver's wiring.
  const ValidationReport again = validate_architecture(
      input_for(spec, r, !spec_declared(spec, params)));
  EXPECT_TRUE(again.clean()) << label << ":\n" << again.summary(50);
}

TEST(ValidatorTest, ExampleArchitecturesVerifyClean) {
  for (const bool reconfig : {true, false}) {
    CrusadeParams params;
    params.enable_reconfig = reconfig;
    expect_clean(quickstart_spec(lib()), params,
                 reconfig ? "quickstart/reconfig" : "quickstart/static");
    expect_clean(base_station_spec(lib()), params,
                 reconfig ? "base_station/reconfig" : "base_station/static");
  }
  expect_clean(video_router_spec(lib()), {}, "video_router");
  expect_clean(fault_tolerant_sonet_spec(lib()), {}, "fault_tolerant_sonet");
}

TEST(ValidatorTest, CorruptedResultsYieldViolations) {
  const Specification spec = quickstart_spec(lib());
  CrusadeParams params;
  const CrusadeResult good = Crusade(spec, lib(), params).run();
  ASSERT_TRUE(good.feasible);
  ASSERT_TRUE(good.validation.clean()) << good.validation.summary(50);
  const bool reboots = !spec_declared(spec, params);

  {  // A task window pulled before its predecessors finish.
    CrusadeResult r = good;
    int victim = -1;
    for (std::size_t t = 0; t < r.schedule.task_start.size(); ++t)
      if (r.schedule.task_start[t] > 0) victim = static_cast<int>(t);
    ASSERT_GE(victim, 0);
    r.schedule.task_start[victim] = 0;
    const ValidationReport report =
        validate_architecture(input_for(spec, r, reboots));
    EXPECT_FALSE(report.clean());
    EXPECT_TRUE(report.schedule_violated()) << report.summary(50);
    EXPECT_GT(report.count(ViolationKind::FeasibilityOverclaimed), 0);
  }
  {  // A task silently dropped from the schedule.
    CrusadeResult r = good;
    r.schedule.task_start[0] = kNoTime;
    r.schedule.task_finish[0] = kNoTime;
    const ValidationReport report =
        validate_architecture(input_for(spec, r, reboots));
    EXPECT_GT(report.count(ViolationKind::UnscheduledTask), 0)
        << report.summary(50);
  }
  {  // Capacity bookkeeping understating real usage.
    CrusadeResult r = good;
    for (PeInstance& inst : r.arch.pes)
      if (inst.alive() && inst.memory_used > 0) {
        inst.memory_used /= 2;
        break;
      }
    const ValidationReport report =
        validate_architecture(input_for(spec, r, reboots));
    EXPECT_GT(report.count(ViolationKind::BookkeepingMismatch), 0)
        << report.summary(50);
  }
  {  // A cooked invoice.
    CrusadeResult r = good;
    r.cost.pes /= 2;
    const ValidationReport report =
        validate_architecture(input_for(spec, r, reboots));
    EXPECT_GT(report.count(ViolationKind::CostMismatch), 0)
        << report.summary(50);
    // Accounting lies alone do not contradict the schedule.
    EXPECT_FALSE(report.schedule_violated());
  }
  {  // Structural damage: arity break aborts deep checks but still reports.
    CrusadeResult r = good;
    r.task_cluster.pop_back();
    const ValidationReport report =
        validate_architecture(input_for(spec, r, reboots));
    EXPECT_FALSE(report.clean());
    EXPECT_FALSE(report.checked_schedule);
    EXPECT_GT(report.count(ViolationKind::Structure), 0);
  }
}

TEST(ValidatorTest, SelfCheckIsWiredIntoTheDriver) {
  const Specification spec = quickstart_spec(lib());
  CrusadeParams params;
  params.self_check = false;
  const CrusadeResult r = Crusade(spec, lib(), params).run();
  EXPECT_TRUE(r.validation.violations.empty());
  EXPECT_FALSE(r.validation.checked_schedule);  // validator never ran
}

TEST(DiagnosisTest, AllocationBudgetExhaustionIsDiagnosed) {
  SpecGenerator gen(lib());
  const Specification spec =
      gen.generate(profile_config(profile_by_name("A1TR"), 0.08));
  CrusadeParams params;
  params.alloc.max_iterations = 1;  // strangle the search immediately
  params.merge.budget = 1;
  const CrusadeResult r = Crusade(spec, lib(), params).run();
  EXPECT_TRUE(r.diagnosis.alloc_budget_exhausted);
  EXPECT_FALSE(r.diagnosis.empty());
  EXPECT_FALSE(r.diagnosis.summary().empty());
  // Degradation contract: the architecture/schedule pair is still honest —
  // whatever the truncated search produced re-verifies structurally.
  EXPECT_TRUE(r.validation.checked_schedule)
      << r.validation.summary(50);
}

TEST(DiagnosisTest, ImpossibleDeadlinePreflightRejectsBeforeSynthesis) {
  Specification spec = quickstart_spec(lib());
  Task& victim = spec.graphs[0].task(spec.graphs[0].task_count() - 1);
  victim.deadline = 1;  // 1 ns: below every execution time in the library
  const CrusadeResult r = Crusade(spec, lib(), {}).run();
  EXPECT_FALSE(r.feasible);
  // Preflight static analysis proves the deadline unmeetable (A011) and
  // stops before any search; the diagnosis says so.
  ASSERT_FALSE(r.diagnosis.preflight_errors.empty());
  EXPECT_NE(r.diagnosis.preflight_errors.front().find("A011"),
            std::string::npos);
  EXPECT_FALSE(r.diagnosis.empty());
  EXPECT_NE(r.diagnosis.summary().find("preflight"), std::string::npos);
}

TEST(DiagnosisTest, ImpossibleDeadlineNamesTheBindingResource) {
  Specification spec = quickstart_spec(lib());
  // Make one task's deadline physically unmeetable.
  Task& victim = spec.graphs[0].task(spec.graphs[0].task_count() - 1);
  victim.deadline = 1;  // 1 ns
  CrusadeParams params;
  params.preflight = false;  // exercise the scheduler-level diagnosis
  const CrusadeResult r = Crusade(spec, lib(), params).run();
  EXPECT_FALSE(r.feasible);
  ASSERT_FALSE(r.diagnosis.misses.empty());
  const DeadlineMiss& miss = r.diagnosis.misses.front();
  EXPECT_EQ(miss.task_name, victim.name);
  EXPECT_GT(miss.overrun, 0);
  EXPECT_FALSE(miss.binding.empty());
  EXPECT_GE(miss.binding_resource, 0);
  EXPECT_FALSE(r.diagnosis.summary().empty());
}

TEST(DiagnosisTest, FeasibleRunsCarryNoDiagnosis) {
  const CrusadeResult r = Crusade(quickstart_spec(lib()), lib(), {}).run();
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.diagnosis.empty());
  EXPECT_EQ(r.diagnosis.misses.size(), 0u);
}

}  // namespace
}  // namespace crusade
