// End-to-end tests of the Crusade driver on small hand-built and generated
// specifications.
#include <gtest/gtest.h>

#include "core/crusade.hpp"
#include "core/report.hpp"
#include "tgff/generator.hpp"

namespace crusade {
namespace {

const ResourceLibrary& lib() {
  static const ResourceLibrary l = telecom_1999();
  return l;
}

Task hw_task(const std::string& name, TimeNs exec, int pfus, int pins,
             TimeNs deadline) {
  Task t;
  t.name = name;
  t.exec.assign(lib().pe_count(), kNoTime);
  for (PeTypeId pe = 0; pe < lib().pe_count(); ++pe) {
    const PeType& type = lib().pe(pe);
    if (!type.is_hardware()) continue;
    if (type.is_programmable() && pfus > type.pfus) continue;
    t.exec[pe] =
        static_cast<TimeNs>(static_cast<double>(exec) / type.speed_factor);
  }
  t.pfus = pfus;
  t.gates = pfus * 12;
  t.pins = pins;
  t.deadline = deadline;
  return t;
}

/// The Figure 2 motivation: T1 incompatible with both, T2 ~ T3 compatible.
Specification fig2_spec() {
  Specification spec;
  spec.name = "fig2";
  for (int i = 0; i < 3; ++i) {
    TaskGraph g("T" + std::to_string(i + 1),
                (i == 0 ? 50 : 100) * kMillisecond);
    // 50 pins per block: two blocks exceed an AT6005's 96 usable pins, so
    // spatial pairing is blocked and only temporal sharing can save a
    // device (and mode consolidation cannot undo it).
    g.add_task(hw_task(g.name() + ".t", 4 * kMillisecond, 300, 50,
                       g.period()));
    spec.graphs.push_back(std::move(g));
  }
  CompatibilityMatrix compat(3);
  compat.set_compatible(1, 2, true);
  spec.compatibility = compat;
  return spec;
}

TEST(CrusadeTest, ReconfigurationSavesOnMotivationExample) {
  const Specification spec = fig2_spec();
  CrusadeParams off;
  off.enable_reconfig = false;
  const CrusadeResult without = Crusade(spec, lib(), off).run();
  CrusadeParams on;
  on.enable_reconfig = true;
  const CrusadeResult with = Crusade(spec, lib(), on).run();

  EXPECT_TRUE(without.feasible);
  EXPECT_TRUE(with.feasible);
  EXPECT_LT(with.cost.total(), without.cost.total());
  EXPECT_LE(with.pe_count, without.pe_count);
  // The reconfigurable device time-shares T2/T3 across two modes.
  int multimode = 0;
  for (const PeInstance& pe : with.arch.pes)
    if (pe.alive() && pe.modes.size() > 1) ++multimode;
  EXPECT_GE(multimode, 1);
  // The non-reconfig variant must have single-mode devices only.
  for (const PeInstance& pe : without.arch.pes)
    EXPECT_LE(pe.modes.size(), 1u);
}

TEST(CrusadeTest, EveryTaskAllocatedAndScheduled) {
  const Specification spec = fig2_spec();
  const CrusadeResult r = Crusade(spec, lib(), {}).run();
  const FlatSpec flat(spec);
  for (int tid = 0; tid < flat.task_count(); ++tid) {
    const int c = r.task_cluster[tid];
    ASSERT_GE(c, 0);
    EXPECT_GE(r.arch.cluster_pe[c], 0);
    EXPECT_NE(r.schedule.task_start[tid], kNoTime);
  }
}

TEST(CrusadeTest, GeneratedWorkloadBothVariantsFeasible) {
  SpecGenerator gen(lib());
  SpecGenConfig cfg;
  cfg.total_tasks = 90;
  cfg.seed = 77;
  const Specification spec = gen.generate(cfg);
  CrusadeParams off;
  off.enable_reconfig = false;
  const CrusadeResult without = Crusade(spec, lib(), off).run();
  EXPECT_TRUE(without.feasible);
  const CrusadeResult with = Crusade(spec, lib(), {}).run();
  EXPECT_TRUE(with.feasible);
  // Reconfiguration never needs MORE devices on this workload family.
  EXPECT_LE(with.pe_count, without.pe_count + 1);
}

TEST(CrusadeTest, MergeValidatorHookRuns) {
  SpecGenerator gen(lib());
  SpecGenConfig cfg;
  cfg.total_tasks = 60;
  cfg.seed = 78;
  cfg.emit_compatibility = false;  // force the derived (Fig. 3) merge path
  const Specification spec = gen.generate(cfg);
  int vetoes = 0;
  CrusadeParams params;
  params.merge_validator = [&](const Architecture&) {
    ++vetoes;
    return false;
  };
  const CrusadeResult r = Crusade(spec, lib(), params).run();
  EXPECT_EQ(r.merge_report.merges_accepted, 0);
  (void)r;
  // The hook may or may not fire depending on merge candidates; it must
  // never crash and vetoed merges must not be applied.
  SUCCEED();
}

TEST(CrusadeTest, InterfaceChoiceMeetsBootRequirement) {
  const Specification spec = fig2_spec();
  const CrusadeResult r = Crusade(spec, lib(), {}).run();
  EXPECT_TRUE(r.interface_choice.meets_requirement);
  EXPECT_LE(r.interface_choice.worst_boot, spec.boot_time_requirement);
}

TEST(CrusadeTest, RejectsInvalidSpecification) {
  Specification empty;
  EXPECT_THROW(Crusade(empty, lib(), {}), Error);
}

TEST(ReportTest, DescribesArchitecture) {
  const Specification spec = fig2_spec();
  const CrusadeResult r = Crusade(spec, lib(), {}).run();
  const std::string text = describe_result(r);
  EXPECT_NE(text.find("architecture:"), std::string::npos);
  EXPECT_NE(text.find("cost:"), std::string::npos);
  EXPECT_NE(text.find("reconfig interface:"), std::string::npos);
  EXPECT_NE(text.find("all deadlines met"), std::string::npos);
  const std::string verdict = one_line_verdict(r);
  EXPECT_NE(verdict.find("feasible"), std::string::npos);
}

TEST(CrusadeTest, CostBreakdownAddsUp) {
  const Specification spec = fig2_spec();
  const CrusadeResult r = Crusade(spec, lib(), {}).run();
  const CostBreakdown& c = r.cost;
  EXPECT_NEAR(c.total(),
              c.pes + c.memory + c.links + c.reconfig_interface + c.spares,
              1e-9);
  EXPECT_GT(c.pes, 0);
}

}  // namespace
}  // namespace crusade
