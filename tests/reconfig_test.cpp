// Unit tests for compatibility derivation, interface synthesis and the
// merge loop.
#include <gtest/gtest.h>

#include "reconfig/compatibility.hpp"
#include "reconfig/interface_synth.hpp"
#include "reconfig/merge.hpp"

namespace crusade {
namespace {

const ResourceLibrary& lib() {
  static const ResourceLibrary l = telecom_1999();
  return l;
}

Task hw_task(TimeNs exec, int pfus, TimeNs deadline = kNoTime) {
  Task t;
  t.name = "hw";
  t.exec.assign(lib().pe_count(), kNoTime);
  for (PeTypeId pe = 0; pe < lib().pe_count(); ++pe) {
    const PeType& type = lib().pe(pe);
    if (!type.is_hardware()) continue;
    if (type.is_programmable() && pfus > type.pfus) continue;
    t.exec[pe] =
        static_cast<TimeNs>(static_cast<double>(exec) / type.speed_factor);
  }
  t.pfus = pfus;
  t.gates = pfus * 12;
  t.pins = 20;
  t.deadline = deadline;
  return t;
}

// --- derived compatibility (Figure 3) ---

TEST(DeriveCompatTest, PhasedSlotsAreCompatible) {
  // Two single-task graphs with ESTs that keep executions apart, one that
  // overlaps the first.
  Specification spec;
  const TimeNs period = 100 * kMillisecond;
  for (int i = 0; i < 3; ++i) {
    TaskGraph g("g" + std::to_string(i), period,
                i == 1 ? 50 * kMillisecond : 0);
    g.add_task(hw_task(10 * kMillisecond, 100, period));
    spec.graphs.push_back(std::move(g));
  }
  const FlatSpec flat(spec);
  // Hand-build a schedule on three dedicated devices.
  SchedProblem p;
  p.flat = &flat;
  for (int i = 0; i < 3; ++i)
    p.resources.push_back(SchedResourceInfo{false, true, 0, {}});
  p.task_resource = {0, 1, 2};
  p.task_mode = {-1, -1, -1};
  p.task_exec = {4 * kMillisecond, 4 * kMillisecond, 4 * kMillisecond};
  const PriorityLevels levels =
      priority_levels(flat, p.task_exec, std::vector<TimeNs>{});
  const ScheduleResult schedule = run_list_scheduler(p, levels);
  ASSERT_TRUE(schedule.feasible);

  const CompatibilityMatrix compat = derive_compatibility(flat, schedule);
  EXPECT_TRUE(compat.compatible(0, 1));   // phased apart
  EXPECT_TRUE(compat.compatible(1, 2));   // phased apart
  EXPECT_FALSE(compat.compatible(0, 2));  // both start at 0: overlap
}

TEST(DeriveCompatTest, UnscheduledGraphIncompatible) {
  Specification spec;
  for (int i = 0; i < 2; ++i) {
    TaskGraph g("g" + std::to_string(i), 100 * kMillisecond);
    g.add_task(hw_task(kMillisecond, 50, 100 * kMillisecond));
    spec.graphs.push_back(std::move(g));
  }
  const FlatSpec flat(spec);
  SchedProblem p;
  p.flat = &flat;
  p.resources.push_back(SchedResourceInfo{false, true, 0, {}});
  p.task_resource = {0, -1};  // second graph unallocated
  p.task_mode = {-1, -1};
  p.task_exec = {kMillisecond, kMillisecond};
  const PriorityLevels levels =
      priority_levels(flat, p.task_exec, std::vector<TimeNs>{});
  const ScheduleResult schedule = run_list_scheduler(p, levels);
  const CompatibilityMatrix compat = derive_compatibility(flat, schedule);
  EXPECT_FALSE(compat.compatible(0, 1));  // conservative
}

// --- interface synthesis (§4.4) ---

TEST(InterfaceTest, BootTimeMath) {
  const PeType& xc4025 = lib().pe(lib().find_pe("XC4025"));
  const InterfaceOption serial{ProgStyle::SerialMaster, 1.0, false};
  // Full image: config_bits / 1 MHz + setup.
  const TimeNs expected =
      static_cast<TimeNs>(xc4025.config_bits * 1000LL) + xc4025.boot_setup;
  EXPECT_EQ(mode_boot_time(xc4025, xc4025.pfus, serial, 1), expected);
  // 8-bit parallel at the same clock is 8x faster (minus setup).
  const InterfaceOption par{ProgStyle::Parallel8Master, 1.0, false};
  EXPECT_LT(mode_boot_time(xc4025, xc4025.pfus, par, 1),
            expected / 4);
}

TEST(InterfaceTest, PartialDeviceStreamsFraction) {
  const PeType& at = lib().pe(lib().find_pe("AT6005"));
  ASSERT_TRUE(at.partial_reconfig);
  const InterfaceOption opt{ProgStyle::SerialMaster, 5.0, false};
  const TimeNs small = mode_boot_time(at, at.pfus / 4, opt, 1);
  const TimeNs full = mode_boot_time(at, at.pfus, opt, 1);
  EXPECT_LT(small, full / 2);
}

TEST(InterfaceTest, ChainingSlowsBoot) {
  const PeType& xc = lib().pe(lib().find_pe("XC4025"));
  const InterfaceOption solo{ProgStyle::SerialMaster, 5.0, false};
  const InterfaceOption chained{ProgStyle::SerialMaster, 5.0, true};
  EXPECT_GT(mode_boot_time(xc, xc.pfus, chained, 4),
            mode_boot_time(xc, xc.pfus, solo, 1));
}

TEST(InterfaceTest, CpldAlwaysJtag) {
  const PeType& cpld = lib().pe(lib().find_pe("XC95288"));
  // Clock/width of the FPGA option must not speed up a CPLD (JTAG @1MHz).
  const TimeNs a = mode_boot_time(
      cpld, cpld.pfus, {ProgStyle::Parallel8Master, 10.0, false}, 1);
  const TimeNs b = mode_boot_time(
      cpld, cpld.pfus, {ProgStyle::SerialSlave, 1.0, false}, 1);
  EXPECT_EQ(a, b);
}

Architecture reconfig_arch() {
  static std::vector<std::unique_ptr<ResourceLibrary>> keep;
  keep.push_back(std::make_unique<ResourceLibrary>(telecom_1999()));
  Architecture arch(keep.back().get(), /*clusters=*/4, /*edges=*/0);
  const int fpga = arch.add_pe(keep.back()->find_pe("AT6005"));
  arch.place_cluster(0, fpga, 0, /*graph=*/0, 0, 0, 300, 20);
  arch.place_cluster(1, fpga, 1, /*graph=*/1, 0, 0, 250, 18);
  return arch;
}

TEST(InterfaceTest, OptionsOrderedByCostAndApplied) {
  Architecture arch = reconfig_arch();
  const auto options =
      enumerate_interface_options(arch, 200 * kMillisecond);
  ASSERT_GT(options.size(), 8u);
  for (std::size_t i = 1; i < options.size(); ++i)
    EXPECT_LE(options[i - 1].cost, options[i].cost);

  const InterfaceChoice choice =
      synthesize_reconfig_interface(arch, 200 * kMillisecond);
  EXPECT_TRUE(choice.meets_requirement);
  EXPECT_GT(arch.interface_cost, 0);
  for (const Mode& m : arch.pes[0].modes) EXPECT_GT(m.boot_time, 0);
}

TEST(InterfaceTest, TightRequirementBuysFasterInterface) {
  Architecture arch_loose = reconfig_arch();
  Architecture arch_tight = reconfig_arch();
  const InterfaceChoice loose =
      synthesize_reconfig_interface(arch_loose, kSecond);
  const InterfaceChoice tight =
      synthesize_reconfig_interface(arch_tight, 2 * kMillisecond);
  EXPECT_LE(tight.worst_boot, loose.worst_boot);
  EXPECT_GE(tight.cost, loose.cost);
}

TEST(InterfaceTest, NoPpesMeansFreeInterface) {
  static ResourceLibrary l = telecom_1999();
  Architecture arch(&l, 1, 0);
  const int cpu = arch.add_pe(l.find_pe("MC68360"));
  arch.place_cluster(0, cpu, 0, 0, 1024, 0, 0, 0);
  const auto options = enumerate_interface_options(arch, kSecond);
  ASSERT_EQ(options.size(), 1u);
  EXPECT_DOUBLE_EQ(options[0].cost, 0);
}

// --- merge loop (Figure 3) ---

struct MergeFixture {
  Specification spec;
  std::unique_ptr<FlatSpec> flat;
  Architecture arch;
  std::vector<int> task_cluster;
  ScheduleResult schedule;
};

/// Two single-task graphs on separate FPGAs, compatible: a merge must fold
/// them into one dual-mode device.
MergeFixture make_merge_fixture(bool compatible) {
  MergeFixture fx;
  static std::vector<std::unique_ptr<ResourceLibrary>> keep;
  keep.push_back(std::make_unique<ResourceLibrary>(telecom_1999()));
  ResourceLibrary* l = keep.back().get();
  for (int i = 0; i < 2; ++i) {
    TaskGraph g("g" + std::to_string(i), 100 * kMillisecond);
    // 450 PFUs each: both fit an AT6005 alone (716 usable at 70% ERUF) but
    // not together, so the merge must keep two modes rather than
    // consolidating them into one configuration.
    g.add_task(hw_task(5 * kMillisecond, 450, 100 * kMillisecond));
    fx.spec.graphs.push_back(std::move(g));
  }
  CompatibilityMatrix compat(2);
  compat.set_compatible(0, 1, compatible);
  fx.spec.compatibility = compat;
  fx.flat = std::make_unique<FlatSpec>(fx.spec);
  fx.arch = Architecture(l, 2, 0);
  const PeTypeId at = l->find_pe("AT6005");
  const int d0 = fx.arch.add_pe(at);
  const int d1 = fx.arch.add_pe(at);
  fx.arch.place_cluster(0, d0, 0, 0, 0, 0, 450, 20);
  fx.arch.place_cluster(1, d1, 0, 1, 0, 0, 450, 20);
  fx.task_cluster = {0, 1};
  SchedProblem p =
      make_sched_problem(fx.arch, *fx.flat, fx.task_cluster, {}, false);
  fx.schedule =
      run_list_scheduler(p, scheduling_levels(*fx.flat, *l));
  return fx;
}

TEST(MergeTest, CompatibleDevicesMerge) {
  MergeFixture fx = make_merge_fixture(true);
  MergeParams params;
  params.reboots_in_schedule = false;
  const MergeReport report =
      merge_modes(fx.arch, fx.schedule, *fx.flat, *fx.spec.compatibility,
                  fx.task_cluster, params);
  EXPECT_EQ(report.merges_accepted, 1);
  EXPECT_EQ(fx.arch.live_pe_count(), 1);
  EXPECT_EQ(fx.arch.pes[fx.arch.cluster_pe[0]].modes.size(), 2u);
  EXPECT_LT(report.cost_after, report.cost_before);
  EXPECT_LT(report.merge_potential_after, report.merge_potential_before);
  EXPECT_TRUE(fx.schedule.feasible);
}

TEST(MergeTest, IncompatibleDevicesDoNotMerge) {
  MergeFixture fx = make_merge_fixture(false);
  MergeParams params;
  params.reboots_in_schedule = false;
  const MergeReport report =
      merge_modes(fx.arch, fx.schedule, *fx.flat, *fx.spec.compatibility,
                  fx.task_cluster, params);
  EXPECT_EQ(report.merges_accepted, 0);
  EXPECT_EQ(fx.arch.live_pe_count(), 2);
}

TEST(MergeTest, ValidatorCanVeto) {
  MergeFixture fx = make_merge_fixture(true);
  MergeParams params;
  params.reboots_in_schedule = false;
  int calls = 0;
  const MergeReport report = merge_modes(
      fx.arch, fx.schedule, *fx.flat, *fx.spec.compatibility,
      fx.task_cluster, params, [&](const Architecture&) {
        ++calls;
        return false;  // dependability analysis says no (§6)
      });
  EXPECT_GT(calls, 0);
  EXPECT_EQ(report.merges_accepted, 0);
  EXPECT_EQ(fx.arch.live_pe_count(), 2);
}

TEST(MergeTest, ConsolidationFoldsSmallModes) {
  // Two small compatible blocks first merge into two modes, then (since
  // both fit one configuration) consolidate into a single mode.
  MergeFixture fx = make_merge_fixture(true);
  // Shrink the resident areas so consolidation becomes possible.
  for (int pe = 0; pe < 2; ++pe) fx.arch.pes[pe].modes[0].pfus_used = 200;
  MergeParams params;
  params.reboots_in_schedule = false;
  const MergeReport report =
      merge_modes(fx.arch, fx.schedule, *fx.flat, *fx.spec.compatibility,
                  fx.task_cluster, params);
  EXPECT_EQ(report.merges_accepted, 1);
  EXPECT_GE(report.consolidations, 1);
  EXPECT_EQ(fx.arch.live_pe_count(), 1);
  EXPECT_EQ(fx.arch.pes[fx.arch.cluster_pe[0]].modes.size(), 1u);
  // Cluster mode indices were renumbered consistently.
  EXPECT_EQ(fx.arch.cluster_mode[0], 0);
  EXPECT_EQ(fx.arch.cluster_mode[1], 0);
}

TEST(MergeTest, ModeCapRespected) {
  MergeFixture fx = make_merge_fixture(true);
  MergeParams params;
  params.reboots_in_schedule = false;
  params.max_modes_per_device = 1;  // merging would need 2 modes
  const MergeReport report =
      merge_modes(fx.arch, fx.schedule, *fx.flat, *fx.spec.compatibility,
                  fx.task_cluster, params);
  EXPECT_EQ(report.merges_accepted, 0);
}

}  // namespace
}  // namespace crusade
