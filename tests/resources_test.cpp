// Unit tests for the resource library and the telecom_1999 default library.
#include <gtest/gtest.h>

#include "resources/resource_library.hpp"

namespace crusade {
namespace {

TEST(LinkTypeTest, CommTimeUsesAccessAndPackets) {
  LinkType link;
  link.name = "test";
  link.max_ports = 4;
  link.access_time = {0, 100, 200, 300, 400};
  link.bytes_per_packet = 32;
  link.packet_time = 1000;
  // 33 bytes -> 2 packets; 3 ports -> access 300.
  EXPECT_EQ(link.comm_time(33, 3), 300 + 2000);
  // Zero bytes: access only... actually zero packets.
  EXPECT_EQ(link.comm_time(0, 2), 200);
  // Port count beyond the vector clamps to the last entry.
  EXPECT_EQ(link.comm_time(32, 9), 400 + 1000);
  EXPECT_THROW(link.comm_time(-1, 2), Error);
}

TEST(Telecom1999, LibraryShapeMatchesPaper) {
  const ResourceLibrary lib = telecom_1999();
  int cpus = 0, asics = 0, fpgas = 0, cplds = 0;
  for (const PeType& pe : lib.pes()) {
    switch (pe.kind) {
      case PeKind::Cpu: ++cpus; break;
      case PeKind::Asic: ++asics; break;
      case PeKind::Fpga: ++fpgas; break;
      case PeKind::Cpld: ++cplds; break;
    }
  }
  EXPECT_EQ(cpus, 8);    // 4 processors, each with and without L2 (§7)
  EXPECT_EQ(asics, 16);  // "16 ASICs"
  EXPECT_EQ(fpgas, 7);   // XC3195A/XC4025/XC6700, AT6005/6010, ORCA 2T15/40
  EXPECT_EQ(cplds, 5);
  EXPECT_EQ(lib.link_count(), 4);  // two buses, LAN, serial (§7)
}

TEST(Telecom1999, DeviceAttributesSane) {
  const ResourceLibrary lib = telecom_1999();
  const PeType& xc6700 = lib.pe(lib.find_pe("XC6700"));
  EXPECT_TRUE(xc6700.partial_reconfig);
  EXPECT_EQ(xc6700.kind, PeKind::Fpga);
  EXPECT_GT(xc6700.config_bits, 0);
  const PeType& cpu = lib.pe(lib.find_pe("MC68360"));
  EXPECT_GT(cpu.memory_bytes, 0);
  EXPECT_GT(cpu.preemption_overhead, 0);
  EXPECT_GT(cpu.fit_rate, 0);
  // Cache variant is faster and dearer.
  const PeType& l2 = lib.pe(lib.find_pe("MC68360+L2"));
  EXPECT_GT(l2.speed_factor, cpu.speed_factor);
  EXPECT_GT(l2.cost, cpu.cost);
}

TEST(Telecom1999, AsicUnitCostAmortizesNre) {
  const ResourceLibrary lib = telecom_1999();
  // Even the smallest ASIC must not undercut small FPGAs, or dynamic
  // reconfiguration could never pay off (§3, DESIGN.md substitution 3).
  const PeType& small_asic = lib.pe(lib.find_pe("ASIC-A5"));
  const PeType& at6005 = lib.pe(lib.find_pe("AT6005"));
  EXPECT_GT(small_asic.cost, at6005.cost);
}

TEST(ResourceLibraryTest, LookupAndValidation) {
  const ResourceLibrary lib = telecom_1999();
  EXPECT_NO_THROW(lib.validate());
  EXPECT_THROW(lib.find_pe("nonexistent"), Error);
  EXPECT_THROW(lib.find_link("nonexistent"), Error);
  EXPECT_GE(lib.find_pe("XC4025"), 0);
  const LinkTypeId cheapest = lib.cheapest_link();
  for (int l = 0; l < lib.link_count(); ++l)
    EXPECT_LE(lib.link(cheapest).cost, lib.link(l).cost);
}

TEST(ResourceLibraryTest, ValidateCatchesBrokenEntries) {
  ResourceLibrary lib;
  PeType cpu;
  cpu.name = "broken-cpu";
  cpu.kind = PeKind::Cpu;  // no memory
  lib.add_pe(cpu);
  LinkType link;
  link.name = "ok";
  link.max_ports = 2;
  link.bytes_per_packet = 32;
  link.packet_time = 100;
  lib.add_link(link);
  EXPECT_THROW(lib.validate(), Error);
}

TEST(ResourceLibraryTest, KindNames) {
  EXPECT_STREQ(to_string(PeKind::Cpu), "CPU");
  EXPECT_STREQ(to_string(PeKind::Fpga), "FPGA");
  EXPECT_STREQ(to_string(PeKind::Cpld), "CPLD");
  EXPECT_STREQ(to_string(PeKind::Asic), "ASIC");
}

}  // namespace
}  // namespace crusade
