// Integration tests: full pipeline runs on generated profiles with
// cross-module invariant checks on the resulting architectures/schedules.
#include <gtest/gtest.h>

#include "core/crusade.hpp"
#include "ft/crusade_ft.hpp"
#include "tgff/profiles.hpp"

namespace crusade {
namespace {

const ResourceLibrary& lib() {
  static const ResourceLibrary l = telecom_1999();
  return l;
}

struct Pipeline {
  Specification spec;
  CrusadeResult without;
  CrusadeResult with;
};

const Pipeline& a1tr_pipeline() {
  static const Pipeline p = [] {
    Pipeline pipe;
    SpecGenerator gen(lib());
    pipe.spec = gen.generate(profile_config(profile_by_name("A1TR"), 0.08));
    CrusadeParams off;
    off.enable_reconfig = false;
    pipe.without = Crusade(pipe.spec, lib(), off).run();
    pipe.with = Crusade(pipe.spec, lib(), {}).run();
    return pipe;
  }();
  return p;
}

TEST(IntegrationTest, BothVariantsMeetDeadlines) {
  EXPECT_TRUE(a1tr_pipeline().without.feasible);
  EXPECT_TRUE(a1tr_pipeline().with.feasible);
}

TEST(IntegrationTest, ReconfigurationSavesCost) {
  const Pipeline& p = a1tr_pipeline();
  EXPECT_LT(p.with.cost.total(), p.without.cost.total());
  EXPECT_LT(p.with.pe_count, p.without.pe_count);
}

TEST(IntegrationTest, ScheduleWindowsNeverOverlapOnSerialResources) {
  const Pipeline& p = a1tr_pipeline();
  for (const CrusadeResult* r : {&p.without, &p.with}) {
    for (std::size_t res = 0; res < r->schedule.timelines.size(); ++res) {
      const bool is_pe = res < r->arch.pes.size();
      if (is_pe) {
        const PeType& type = lib().pe(r->arch.pes[res].type);
        if (type.is_hardware()) continue;  // concurrent circuits may overlap
        if (type.kind == PeKind::Cpu) continue;  // preemption overlaps
      }
      const auto& windows = r->schedule.timelines[res].windows();
      for (std::size_t a = 0; a < windows.size(); ++a)
        for (std::size_t b = a + 1; b < windows.size(); ++b) {
          if (windows[a].mode >= 0 && windows[b].mode >= 0 &&
              windows[a].mode != windows[b].mode)
            continue;  // different reconfiguration modes never co-run
          EXPECT_FALSE(periodic_overlap(windows[a].span, windows[b].span))
              << "overlap on serial resource " << res;
        }
    }
  }
}

TEST(IntegrationTest, CpuSamePeriodWindowsNeverOverlap) {
  // On preemptive CPUs, equal-period windows are solid: verify exactness.
  const Pipeline& p = a1tr_pipeline();
  for (std::size_t res = 0; res < p.with.arch.pes.size(); ++res) {
    if (lib().pe(p.with.arch.pes[res].type).kind != PeKind::Cpu) continue;
    const auto& windows = p.with.schedule.timelines[res].windows();
    for (std::size_t a = 0; a < windows.size(); ++a)
      for (std::size_t b = a + 1; b < windows.size(); ++b) {
        if (windows[a].span.period != windows[b].span.period) continue;
        EXPECT_FALSE(periodic_overlap(windows[a].span, windows[b].span))
            << "equal-period overlap on CPU " << res;
      }
  }
}

TEST(IntegrationTest, FinishTimesMatchDeadlineFlag) {
  const Pipeline& p = a1tr_pipeline();
  const FlatSpec flat(p.spec);
  for (int tid = 0; tid < flat.task_count(); ++tid) {
    const TimeNs d = flat.absolute_deadline(tid);
    if (d == kNoTime) continue;
    ASSERT_NE(p.with.schedule.task_finish[tid], kNoTime);
    EXPECT_LE(p.with.schedule.task_finish[tid], d);
  }
}

TEST(IntegrationTest, EdgesScheduledAfterProducers) {
  const Pipeline& p = a1tr_pipeline();
  const FlatSpec flat(p.spec);
  for (int eid = 0; eid < flat.edge_count(); ++eid) {
    if (p.with.schedule.edge_start[eid] == kNoTime) continue;
    EXPECT_GE(p.with.schedule.edge_start[eid],
              p.with.schedule.task_finish[flat.edge_src(eid)]);
    EXPECT_GE(p.with.schedule.task_start[flat.edge_dst(eid)],
              p.with.schedule.edge_finish[eid]);
  }
}

TEST(IntegrationTest, DerivedCompatibilityPathWorks) {
  SpecGenerator gen(lib());
  SpecGenConfig cfg;
  cfg.total_tasks = 80;
  cfg.seed = 55;
  cfg.emit_compatibility = false;  // CRUSADE must derive it (Fig. 3)
  const Specification spec = gen.generate(cfg);
  const CrusadeResult r = Crusade(spec, lib(), {}).run();
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.compat.graph_count(), static_cast<int>(spec.graphs.size()));
}

TEST(IntegrationTest, FtPipelineOnProfile) {
  SpecGenerator gen(lib());
  const Specification spec =
      gen.generate(profile_config(profile_by_name("A1TR"), 0.06));
  CrusadeFtParams params;
  params.base.enable_reconfig = false;
  const CrusadeFtResult ft = CrusadeFt(spec, lib(), params).run();
  EXPECT_TRUE(ft.synthesis.feasible);
  EXPECT_TRUE(ft.dependability.meets_requirements);
  // Fault tolerance adds tasks and cost.
  EXPECT_GT(ft.transform.tasks_after, spec.total_tasks());
  CrusadeParams plain;
  plain.enable_reconfig = false;
  EXPECT_GT(ft.total_cost, Crusade(spec, lib(), plain).run().cost.total());
}

}  // namespace
}  // namespace crusade
