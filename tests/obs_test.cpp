// Tests for the observability subsystem (src/obs) and the CLI JSON writer:
// span nesting and ordering, counter atomicity under threads, Chrome
// trace-event JSON validity (parsed back with a real parser below), the
// zero-cost disabled path, and RunStats consistency against the allocator's
// own evaluation tally on a paper example.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/crusade.hpp"
#include "example_specs.hpp"
#include "ft/crusade_ft.hpp"
#include "json_writer.hpp"
#include "obs/flight.hpp"
#include "obs/histogram.hpp"
#include "obs/obs.hpp"
#include "obs/runstats.hpp"
#include "util/atomic_file.hpp"

namespace crusade {
namespace {

// --- a small strict JSON parser (round-trip check, not a convenience) ----

struct JsonValue {
  enum Kind { Null, Bool, Number, String, Array, Object } kind = Null;
  bool boolean = false;
  double number = 0;
  std::string text;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;

  const JsonValue& at(const std::string& key) const {
    auto it = fields.find(key);
    if (it == fields.end()) {
      static const JsonValue missing;
      ADD_FAILURE() << "missing key: " << key;
      return missing;
    }
    return it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  /// Parses one complete document; trailing garbage is an error.
  bool parse(JsonValue& out) {
    ok_ = true;
    pos_ = 0;
    out = value();
    skip_ws();
    if (pos_ != s_.size()) ok_ = false;
    return ok_;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  JsonValue value() {
    skip_ws();
    JsonValue v;
    if (!ok_ || pos_ >= s_.size()) {
      ok_ = false;
      return v;
    }
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      v.kind = JsonValue::String;
      v.text = string();
      return v;
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      v.kind = JsonValue::Bool;
      v.boolean = true;
      return v;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      v.kind = JsonValue::Bool;
      return v;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return v;
    }
    return number();
  }
  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Object;
    ok_ = ok_ && eat('{');
    if (eat('}')) return v;
    do {
      skip_ws();
      std::string key = string();
      ok_ = ok_ && eat(':');
      v.fields[key] = value();
    } while (ok_ && eat(','));
    ok_ = ok_ && eat('}');
    return v;
  }
  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Array;
    ok_ = ok_ && eat('[');
    if (eat(']')) return v;
    do {
      v.items.push_back(value());
    } while (ok_ && eat(','));
    ok_ = ok_ && eat(']');
    return v;
  }
  std::string string() {
    std::string out;
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      ok_ = false;
      return out;
    }
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) {
          ok_ = false;
          return out;
        }
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u':
            if (pos_ + 4 > s_.size()) {
              ok_ = false;
              return out;
            }
            out += static_cast<char>(
                std::strtol(s_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            break;
          default: out += esc;
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= s_.size()) {
      ok_ = false;
      return out;
    }
    ++pos_;  // closing quote
    return out;
  }
  JsonValue number() {
    JsonValue v;
    v.kind = JsonValue::Number;
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    v.number = std::strtod(start, &end);
    if (end == start) {
      ok_ = false;
      return v;
    }
    pos_ += static_cast<std::size_t>(end - start);
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Every obs test starts from a clean, enabled registry and leaves the
/// global switch off so unrelated tests keep the zero-cost path.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::reset();
    obs::set_enabled(true);
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::reset();
  }
};

// --- spans ---------------------------------------------------------------

TEST_F(ObsTest, SpansRecordInCompletionOrderWithNesting) {
  {
    OBS_SPAN("outer");
    {
      OBS_SPAN("inner.a");
    }
    { OBS_SPAN("inner.b"); }
  }
  const std::vector<obs::TraceEvent> events = obs::events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "inner.a");
  EXPECT_EQ(events[1].name, "inner.b");
  EXPECT_EQ(events[2].name, "outer");
  // The outer span contains both inner spans in time.
  const obs::TraceEvent& outer = events[2];
  for (int i = 0; i < 2; ++i) {
    EXPECT_GE(events[i].ts_ns, outer.ts_ns);
    EXPECT_LE(events[i].ts_ns + events[i].dur_ns,
              outer.ts_ns + outer.dur_ns);
  }
  // inner.b starts no earlier than inner.a ends.
  EXPECT_GE(events[1].ts_ns, events[0].ts_ns + events[0].dur_ns);
}

TEST_F(ObsTest, DisabledSpansAndCountersRecordNothing) {
  obs::set_enabled(false);
  {
    OBS_SPAN("ghost");
    obs::count("ghost.counter");
  }
  EXPECT_EQ(obs::event_count(), 0u);
  EXPECT_EQ(obs::counter_value("ghost.counter"), 0);
  EXPECT_TRUE(obs::counters().empty());

  // A span opened while disabled is not recorded retroactively even when
  // tracing turns on mid-span.
  {
    auto span = std::make_unique<obs::Span>("late");
    obs::set_enabled(true);
    span.reset();
  }
  EXPECT_EQ(obs::event_count(), 0u);
}

TEST_F(ObsTest, SinkCapacityDropsInsteadOfGrowing) {
  obs::set_event_capacity(4);
  for (int i = 0; i < 10; ++i) {
    OBS_SPAN("span.capped");
  }
  EXPECT_EQ(obs::event_count(), 4u);
  EXPECT_EQ(obs::dropped_events(), 6u);
  obs::set_event_capacity(262144);
}

// --- counters ------------------------------------------------------------

TEST_F(ObsTest, CountersAreAtomicAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([] {
      for (int i = 0; i < kIncrements; ++i) obs::count("test.contended");
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(obs::counter_value("test.contended"),
            static_cast<std::int64_t>(kThreads) * kIncrements);
}

TEST_F(ObsTest, CountersSupportDeltasAndSortedListing) {
  obs::count("b.second", 5);
  obs::count("a.first", 2);
  obs::count("a.first", 3);
  const auto all = obs::counters();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "a.first");
  EXPECT_EQ(all[0].second, 5);
  EXPECT_EQ(all[1].first, "b.second");
  EXPECT_EQ(all[1].second, 5);
}

// --- serialization -------------------------------------------------------

TEST_F(ObsTest, TraceJsonIsValidChromeTraceFormat) {
  {
    OBS_SPAN("phase.example");
    obs::count("sched.evals", 3);
  }
  const std::string json = obs::trace_json();
  JsonValue doc;
  ASSERT_TRUE(JsonParser(json).parse(doc)) << json;
  ASSERT_EQ(doc.kind, JsonValue::Object);
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Array);
  ASSERT_EQ(events.items.size(), 1u);
  const JsonValue& ev = events.items[0];
  EXPECT_EQ(ev.at("name").text, "phase.example");
  EXPECT_EQ(ev.at("ph").text, "X");  // complete event
  EXPECT_EQ(ev.at("pid").number, 1);
  EXPECT_GE(ev.at("ts").number, 0);   // microseconds since trace epoch
  EXPECT_GE(ev.at("dur").number, 0);
  EXPECT_EQ(doc.at("displayTimeUnit").text, "ms");
}

TEST_F(ObsTest, MetricsJsonRoundTrips) {
  obs::count("alloc.sched_evals", 7);
  {
    OBS_SPAN("alloc.eval");
  }
  JsonValue doc;
  ASSERT_TRUE(JsonParser(obs::metrics_json()).parse(doc));
  EXPECT_EQ(doc.at("counters").at("alloc.sched_evals").number, 7);
  EXPECT_EQ(doc.at("events").number, 1);
  EXPECT_EQ(doc.at("dropped").number, 0);
  // The aligned-text table carries the same counter.
  EXPECT_NE(obs::metrics_table().find("alloc.sched_evals"),
            std::string::npos);
}

TEST_F(ObsTest, RunStatsJsonRoundTrips) {
  RunStats stats;
  stats.allocation_seconds = 0.25;
  stats.total_seconds = 1.0;
  stats.sched_evals = 42;
  JsonValue doc;
  ASSERT_TRUE(JsonParser(stats.to_json()).parse(doc));
  EXPECT_DOUBLE_EQ(doc.at("phases").at("allocation").number, 0.25);
  EXPECT_EQ(doc.at("counters").at("sched.evals").number, 42);
  // Table renders every phase row plus the counters.
  const std::string table = stats.table();
  EXPECT_NE(table.find("allocation"), std::string::npos);
  EXPECT_NE(table.find("sched.evals"), std::string::npos);
}

// --- the CLI JSON writer -------------------------------------------------

TEST(JsonWriter, NestedContainersAndEscaping) {
  tools::JsonWriter w;
  w.begin_object()
      .key("name").value("line\n\"quote\"")
      .key("ok").value(true)
      .key("n").value(42)
      .key("pi").value(3.14159, 3)
      .key("list").begin_array().value(1).value(2).value(3).end_array()
      .key("nested").begin_object().key("deep").value("yes").end_object()
      .end_object();
  JsonValue doc;
  ASSERT_TRUE(JsonParser(w.str()).parse(doc)) << w.str();
  EXPECT_EQ(doc.at("name").text, "line\n\"quote\"");
  EXPECT_TRUE(doc.at("ok").boolean);
  EXPECT_EQ(doc.at("n").number, 42);
  EXPECT_DOUBLE_EQ(doc.at("pi").number, 3.142);
  ASSERT_EQ(doc.at("list").items.size(), 3u);
  EXPECT_EQ(doc.at("list").items[2].number, 3);
  EXPECT_EQ(doc.at("nested").at("deep").text, "yes");
}

TEST(JsonWriter, RawSplicesLibraryDocuments) {
  RunStats stats;
  stats.sched_evals = 9;
  tools::JsonWriter w;
  w.begin_object()
      .key("feasible").value(false)
      .key("stats").raw(stats.to_json())
      .end_object();
  JsonValue doc;
  ASSERT_TRUE(JsonParser(w.str()).parse(doc)) << w.str();
  EXPECT_EQ(doc.at("stats").at("counters").at("sched.evals").number, 9);
}

// --- end-to-end on a paper example ---------------------------------------

TEST_F(ObsTest, RunStatsMatchesAllocatorTallyOnPaperExample) {
  const ResourceLibrary lib = telecom_1999();
  const Specification spec = quickstart_spec(lib);
  const CrusadeResult result = Crusade(spec, lib, {}).run();

  // The headline consistency contract: RunStats' scheduler-evaluation count
  // IS the allocator's budgeted tally, and the obs counter incremented at
  // every AllocationSearch::evaluate agrees with both.
  EXPECT_GT(result.stats.sched_evals, 0);
  EXPECT_EQ(result.stats.sched_evals,
            obs::counter_value("alloc.sched_evals"));
  EXPECT_EQ(result.stats.sched_invocations,
            obs::counter_value("sched.invocations"));
  EXPECT_GE(result.stats.sched_invocations, result.stats.sched_evals);
  EXPECT_GT(result.stats.clusters, 0);
  EXPECT_GT(result.stats.total_seconds, 0);
  EXPECT_LE(result.stats.allocation_seconds, result.stats.total_seconds);

  // The trace carries the driver's phase taxonomy: at least the preflight,
  // clustering, allocation, reconfig, interface and validation phases.
  JsonValue doc;
  ASSERT_TRUE(JsonParser(obs::trace_json()).parse(doc));
  std::map<std::string, int> phase_spans;
  for (const JsonValue& ev : doc.at("traceEvents").items) {
    const std::string& name = ev.at("name").text;
    if (name.rfind("phase.", 0) == 0) ++phase_spans[name];
  }
  EXPECT_GE(phase_spans.size(), 5u) << obs::trace_json();
  for (const char* phase :
       {"phase.preflight", "phase.clustering", "phase.allocation",
        "phase.reconfig", "phase.interface", "phase.validation"})
    EXPECT_EQ(phase_spans[phase], 1) << phase;
}

TEST_F(ObsTest, FtAndSurvivePhasesLandInStatsAndTrace) {
  const ResourceLibrary lib = telecom_1999();
  const Specification spec = quickstart_spec(lib);
  CrusadeFtParams params;
  params.survive_check = true;
  params.survive_seeds = 16;
  const CrusadeFtResult result = CrusadeFt(spec, lib, params).run();
  ASSERT_TRUE(result.synthesis.feasible);

  // RunStats JSON round-trips the FT/survive phase laps and counters.
  JsonValue doc;
  ASSERT_TRUE(JsonParser(result.synthesis.stats.to_json()).parse(doc));
  const JsonValue& phases = doc.at("phases");
  EXPECT_GT(phases.at("ft.transform").number, 0.0);
  EXPECT_GE(phases.at("ft.dependability").number, 0.0);
  EXPECT_GT(phases.at("survive").number, 0.0);
  const JsonValue& counters = doc.at("counters");
  const int checks = result.transform.assertions_added +
                     result.transform.duplicate_compare_added;
  EXPECT_EQ(counters.at("ft.check_tasks").number, checks);
  EXPECT_EQ(counters.at("ft.checks_shared").number,
            result.transform.checks_shared);
  EXPECT_GE(counters.at("ft.spares").number, 0);
  EXPECT_EQ(counters.at("survive.scenarios").number,
            result.survival.scenarios);
  EXPECT_EQ(counters.at("survive.ft_lies").number, 0);

  // The obs registry carries the same tallies...
  EXPECT_EQ(obs::counter_value("ft.check_tasks"), checks);
  EXPECT_EQ(obs::counter_value("sim.scenarios"), result.survival.scenarios);
  EXPECT_EQ(obs::counter_value("sim.masked"), result.survival.masked);
  EXPECT_EQ(obs::counter_value("sim.ft_lie"), 0);

  // ...and the trace records the FT/sim phase spans (one sweep wrapping one
  // campaign wrapping per-scenario spans).
  JsonValue trace;
  ASSERT_TRUE(JsonParser(obs::trace_json()).parse(trace));
  std::map<std::string, int> spans;
  for (const JsonValue& ev : trace.at("traceEvents").items)
    ++spans[ev.at("name").text];
  EXPECT_EQ(spans["phase.ft.transform"], 1);
  EXPECT_EQ(spans["phase.ft.dependability"], 1);
  EXPECT_EQ(spans["phase.sim.sweep"], 1);
  EXPECT_EQ(spans["phase.sim.campaign"], 1);
  EXPECT_EQ(spans["sim.scenario"], result.survival.scenarios);
}

TEST_F(ObsTest, DisabledRunReportsPhaseTimesButNoGatedCounters) {
  obs::set_enabled(false);
  const ResourceLibrary lib = telecom_1999();
  const Specification spec = quickstart_spec(lib);
  const CrusadeResult result = Crusade(spec, lib, {}).run();
  // Wall-clock phase laps and struct-carried tallies survive without
  // tracing; registry-derived counters stay zero.
  EXPECT_GT(result.stats.total_seconds, 0);
  EXPECT_GT(result.stats.sched_evals, 0);
  EXPECT_GT(result.stats.clusters, 0);
  EXPECT_EQ(result.stats.sched_invocations, 0);
  EXPECT_EQ(result.stats.finish_estimates, 0);
  EXPECT_EQ(obs::event_count(), 0u);
}

// --- high-watermark counters (serve.queue_depth_peak) ----------------------

TEST_F(ObsTest, RecordPeakKeepsHighWatermark) {
  obs::record_peak("test.peak", 5);
  EXPECT_EQ(obs::counter_value("test.peak"), 5);
  obs::record_peak("test.peak", 3);  // lower samples never regress the peak
  EXPECT_EQ(obs::counter_value("test.peak"), 5);
  obs::record_peak("test.peak", 9);
  EXPECT_EQ(obs::counter_value("test.peak"), 9);
  obs::record_peak("test.peak", 9);
  EXPECT_EQ(obs::counter_value("test.peak"), 9);
  obs::set_enabled(false);
  obs::record_peak("test.peak", 100);  // disabled: single relaxed load only
  EXPECT_EQ(obs::counter_value("test.peak"), 9);
}

// --- histograms ----------------------------------------------------------

TEST(Histogram, BucketSchemeIsExactBelow8AndWithin12PercentAbove) {
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(obs::histogram_bucket(v), v);
    EXPECT_EQ(obs::histogram_bucket_lo(v), v);
    EXPECT_EQ(obs::histogram_bucket_hi(v), v);
  }
  // For v >= 8 the bucket bounds bracket v and the upper bound (what
  // quantile() reports) errs high by at most one sub-bucket: 12.5 %.
  for (std::uint64_t v = 8; v < (1ull << 40); v = v * 3 + 1) {
    const std::size_t b = obs::histogram_bucket(v);
    ASSERT_LT(b, obs::kHistogramBuckets);
    EXPECT_LE(obs::histogram_bucket_lo(b), v) << v;
    EXPECT_GE(obs::histogram_bucket_hi(b), v) << v;
    EXPECT_LE(static_cast<double>(obs::histogram_bucket_hi(b)),
              1.125 * static_cast<double>(v)) << v;
  }
  // Buckets tile the value line: each upper bound is one below the next
  // bucket's lower bound.
  for (std::size_t b = 0; b + 1 < obs::kHistogramBuckets; ++b)
    EXPECT_EQ(obs::histogram_bucket_hi(b) + 1, obs::histogram_bucket_lo(b + 1))
        << b;
}

TEST(Histogram, QuantilesErrHighByAtMostOneSubBucket) {
  obs::Histogram hist;
  for (std::uint64_t v = 1; v <= 1000; ++v) hist.record(v);
  const obs::HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.total(), 1000u);
  EXPECT_EQ(snap.max(), 1000u);
  // The reported quantile is the upper bound of the bucket holding the true
  // rank value: never below it, never more than 12.5 % above.
  const struct { double q; std::uint64_t truth; } cases[] = {
      {0.5, 500}, {0.9, 900}, {0.99, 990}, {1.0, 1000}};
  for (const auto& c : cases) {
    const std::uint64_t got = snap.quantile(c.q);
    EXPECT_GE(got, c.truth) << c.q;
    EXPECT_LE(static_cast<double>(got), 1.125 * static_cast<double>(c.truth))
        << c.q;
  }
  // Empty histogram: all zeros.
  const obs::HistogramSnapshot empty = obs::Histogram().snapshot();
  EXPECT_EQ(empty.total(), 0u);
  EXPECT_EQ(empty.quantile(0.5), 0u);
  EXPECT_EQ(empty.max(), 0u);
}

TEST(Histogram, MergeIsCommutative) {
  obs::Histogram a, b;
  for (std::uint64_t v = 0; v < 500; ++v) a.record(v * 7);
  for (std::uint64_t v = 0; v < 300; ++v) b.record(v * v);
  const obs::HistogramSnapshot ab = a.snapshot().merge(b.snapshot());
  const obs::HistogramSnapshot ba = b.snapshot().merge(a.snapshot());
  EXPECT_EQ(ab.total(), 800u);
  EXPECT_EQ(ab.total(), ba.total());
  EXPECT_EQ(ab.max(), ba.max());
  for (std::size_t i = 0; i < obs::kHistogramBuckets; ++i)
    ASSERT_EQ(ab.bucket_count(i), ba.bucket_count(i)) << i;
  EXPECT_EQ(ab.to_json(), ba.to_json());
}

TEST(Histogram, ConcurrentRecordingTotalsExactly) {
  constexpr int kThreads = 8;
  constexpr int kRecords = 10000;
  obs::Histogram hist;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kRecords; ++i)
        hist.record(static_cast<std::uint64_t>(t * kRecords + i));
    });
  for (std::thread& t : threads) t.join();
  const obs::HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.total(),
            static_cast<std::uint64_t>(kThreads) * kRecords);
  std::uint64_t bucket_sum = 0;
  for (std::size_t i = 0; i < obs::kHistogramBuckets; ++i)
    bucket_sum += snap.bucket_count(i);
  EXPECT_EQ(bucket_sum, snap.total());
  EXPECT_EQ(snap.max(), static_cast<std::uint64_t>(kThreads) * kRecords - 1);
}

TEST(Histogram, JsonIsStrictAndOrdered) {
  obs::Histogram hist;
  for (std::uint64_t v = 1; v <= 200; ++v) hist.record(v);
  const obs::HistogramSnapshot snap = hist.snapshot();
  JsonValue doc;
  ASSERT_TRUE(JsonParser(snap.to_json()).parse(doc)) << snap.to_json();
  EXPECT_EQ(doc.at("count").number, 200);
  EXPECT_LE(doc.at("p50").number, doc.at("p90").number);
  EXPECT_LE(doc.at("p90").number, doc.at("p99").number);
  EXPECT_LE(doc.at("p99").number, doc.at("max").number);
  EXPECT_EQ(doc.at("max").number, 200);
}

// --- the crash flight recorder -------------------------------------------

class FlightTest : public ObsTest {
 protected:
  void SetUp() override {
    ObsTest::SetUp();
    path_ = "/tmp/crusade_flight_test_" + std::to_string(::getpid()) + ".ring";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    obs::disarm_flight_recorder();
    std::remove(path_.c_str());
    ObsTest::TearDown();
  }
  std::string path_;
};

TEST_F(FlightTest, RecordsSpansAndCountersReadableWhileArmed) {
  ASSERT_TRUE(obs::arm_flight_recorder(path_, 64));
  obs::count("serve.worker.attempts");
  obs::count("sched.evals", 5);
  obs::count("sched.evals", 2);
  auto open_span = std::make_unique<obs::Span>("serve.worker.attempt");
  {
    OBS_SPAN("phase.allocation");
  }
  // A second process (the supervisor) reads the same file: MAP_SHARED pages
  // are visible through the page cache without any flush from the writer.
  const obs::FlightSnapshot snap = obs::read_flight(path_);
  ASSERT_TRUE(snap.valid());
  EXPECT_EQ(snap.pid(), static_cast<std::uint32_t>(::getpid()));
  const std::vector<std::string> stack = snap.span_stack();
  ASSERT_EQ(stack.size(), 1u);
  EXPECT_EQ(stack[0], "serve.worker.attempt");
  const auto totals = snap.counter_totals();
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals[0].first, "sched.evals");
  EXPECT_EQ(totals[0].second, 7);
  EXPECT_EQ(totals[1].first, "serve.worker.attempts");
  EXPECT_EQ(totals[1].second, 1);

  open_span.reset();
  const obs::FlightSnapshot after = obs::read_flight(path_);
  EXPECT_TRUE(after.span_stack().empty());
}

TEST_F(FlightTest, RingWrapKeepsTheNewestRecords) {
  ASSERT_TRUE(obs::arm_flight_recorder(path_, 8));
  for (int i = 0; i < 100; ++i) obs::count("serve.attempts");
  const obs::FlightSnapshot snap = obs::read_flight(path_);
  ASSERT_TRUE(snap.valid());
  EXPECT_EQ(snap.total_records(), 100u);
  ASSERT_EQ(snap.events().size(), 8u);  // only the last ring's worth survive
  EXPECT_EQ(snap.events().back().value, 100);  // running total, newest last
  EXPECT_EQ(snap.events().front().value, 93);
}

TEST_F(FlightTest, SurvivesSigkillMidSpan) {
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // The worker: arm, open a span stack, then die the hard way — no exit
    // handlers, no flush, exactly what the watchdog does to a hung worker.
    obs::reset();
    obs::set_enabled(true);
    if (!obs::arm_flight_recorder(path_, 64)) ::_exit(2);
    obs::count("serve.worker.attempts");
    obs::Span attempt("serve.worker.attempt");
    obs::Span hang("serve.worker.hang");
    ::kill(::getpid(), SIGKILL);
    ::_exit(3);  // unreachable
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
  const obs::FlightSnapshot snap = obs::read_flight(path_);
  ASSERT_TRUE(snap.valid());
  EXPECT_EQ(snap.pid(), static_cast<std::uint32_t>(child));
  const std::vector<std::string> stack = snap.span_stack();
  ASSERT_EQ(stack.size(), 2u) << snap.events().size();
  EXPECT_EQ(stack[0], "serve.worker.attempt");
  EXPECT_EQ(stack[1], "serve.worker.hang");
  const auto totals = snap.counter_totals();
  ASSERT_EQ(totals.size(), 1u);
  EXPECT_EQ(totals[0].first, "serve.worker.attempts");
  EXPECT_EQ(totals[0].second, 1);
}

TEST_F(FlightTest, RejectsMissingAndCorruptFiles) {
  EXPECT_FALSE(obs::read_flight("/nonexistent/flight.ring").valid());
  EXPECT_FALSE(obs::read_flight(path_).valid());  // never created
  // A file with the wrong magic is rejected, not misparsed.
  atomic_write_file(path_, std::string(4096, 'x'));
  EXPECT_FALSE(obs::read_flight(path_).valid());
  // Arming rejects degenerate slot counts.
  EXPECT_FALSE(obs::arm_flight_recorder(path_, 0));
  EXPECT_FALSE(obs::flight_recorder_armed());
}

}  // namespace
}  // namespace crusade
