// Unit tests for the task-graph model and specification container.
#include <gtest/gtest.h>

#include "graph/specification.hpp"

namespace crusade {
namespace {

constexpr int kPeTypes = 3;

Task simple_task(const std::string& name, TimeNs exec = 1000) {
  Task t;
  t.name = name;
  t.exec.assign(kPeTypes, exec);
  return t;
}

TaskGraph chain_graph(int n, TimeNs period = kMillisecond) {
  TaskGraph g("chain", period);
  for (int i = 0; i < n; ++i) g.add_task(simple_task("t" + std::to_string(i)));
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1, 64);
  return g;
}

TEST(TaskGraphTest, TopoOrderRespectsEdges) {
  TaskGraph g("diamond", kMillisecond);
  for (int i = 0; i < 4; ++i) g.add_task(simple_task("t"));
  g.add_edge(0, 1, 8);
  g.add_edge(0, 2, 8);
  g.add_edge(1, 3, 8);
  g.add_edge(2, 3, 8);
  const auto order = g.topo_order();
  std::vector<int> pos(4);
  for (int i = 0; i < 4; ++i) pos[order[i]] = i;
  for (const auto& e : g.edges()) EXPECT_LT(pos[e.src], pos[e.dst]);
}

TEST(TaskGraphTest, CycleDetected) {
  TaskGraph g("cyc", kMillisecond);
  g.add_task(simple_task("a"));
  g.add_task(simple_task("b"));
  g.add_edge(0, 1, 8);
  g.add_edge(1, 0, 8);
  EXPECT_THROW(g.topo_order(), Error);
  EXPECT_THROW(g.validate(kPeTypes), Error);
}

TEST(TaskGraphTest, EdgeEndpointChecks) {
  TaskGraph g("bad", kMillisecond);
  g.add_task(simple_task("a"));
  EXPECT_THROW(g.add_edge(0, 1, 8), Error);   // dst out of range
  EXPECT_THROW(g.add_edge(0, 0, 8), Error);   // self loop
  EXPECT_THROW(g.add_edge(0, 0, -1), Error);  // also negative bytes
}

TEST(TaskGraphTest, ExclusionSymmetryEnforced) {
  TaskGraph g = chain_graph(3);
  g.add_exclusion(0, 2);
  EXPECT_NO_THROW(g.validate(kPeTypes));
  // Break symmetry by hand: validation must catch it.
  g.task(0).exclusions.push_back(1);
  EXPECT_THROW(g.validate(kPeTypes), Error);
}

TEST(TaskGraphTest, SinksAndSources) {
  TaskGraph g = chain_graph(3);
  EXPECT_TRUE(g.is_source(0));
  EXPECT_FALSE(g.is_source(1));
  EXPECT_TRUE(g.is_sink(2));
  EXPECT_FALSE(g.is_sink(0));
}

TEST(TaskGraphTest, EffectiveDeadlineDefaultsToPeriodOnSinks) {
  TaskGraph g = chain_graph(3, 5 * kMillisecond);
  EXPECT_EQ(g.effective_deadline(2), 5 * kMillisecond);
  EXPECT_EQ(g.effective_deadline(1), kNoTime);  // interior, none set
  g.task(1).deadline = kMillisecond;
  EXPECT_EQ(g.effective_deadline(1), kMillisecond);
}

TEST(TaskGraphTest, ValidateRejectsBadVectors) {
  TaskGraph g = chain_graph(2);
  g.task(0).exec.resize(kPeTypes - 1);  // arity mismatch
  EXPECT_THROW(g.validate(kPeTypes), Error);
}

TEST(TaskGraphTest, ValidateRejectsInfeasibleTask) {
  TaskGraph g = chain_graph(2);
  g.task(1).exec.assign(kPeTypes, kNoTime);
  EXPECT_THROW(g.validate(kPeTypes), Error);
}

TEST(TaskGraphTest, ValidateRejectsNonPositivePeriod) {
  TaskGraph g = chain_graph(2);
  g.set_period(0);
  EXPECT_THROW(g.validate(kPeTypes), Error);
}

TEST(TaskGraphTest, PreferenceVectorCanForbidType) {
  Task t = simple_task("pref");
  t.preference.assign(kPeTypes, 0.0);
  t.preference[1] = -1.0;
  EXPECT_TRUE(t.feasible_on(0));
  EXPECT_FALSE(t.feasible_on(1));
  EXPECT_FALSE(t.feasible_on(kPeTypes));  // out of range
}

TEST(CompatibilityTest, SymmetricAndDiagonalFixed) {
  CompatibilityMatrix m(3);
  EXPECT_FALSE(m.compatible(0, 1));  // default: incompatible
  m.set_compatible(0, 1, true);
  EXPECT_TRUE(m.compatible(0, 1));
  EXPECT_TRUE(m.compatible(1, 0));
  EXPECT_FALSE(m.compatible(0, 0));  // a graph never shares with itself
  EXPECT_THROW(m.set_compatible(1, 1, true), Error);
}

TEST(CompatibilityTest, VectorForMatchesPaperConvention) {
  CompatibilityMatrix m(3);
  m.set_compatible(0, 2, true);
  const auto v = m.vector_for(0);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], 1);  // incompatible
  EXPECT_EQ(v[2], 0);  // compatible (paper: delta = 0)
}

TEST(SpecificationTest, HyperperiodAndTotals) {
  Specification spec;
  spec.graphs.push_back(chain_graph(3, 2 * kMillisecond));
  spec.graphs.push_back(chain_graph(4, 5 * kMillisecond));
  EXPECT_EQ(spec.hyperperiod(), 10 * kMillisecond);
  EXPECT_EQ(spec.total_tasks(), 7);
  EXPECT_EQ(spec.total_edges(), 5);
  EXPECT_NO_THROW(spec.validate(kPeTypes));
}

TEST(SpecificationTest, ValidatesCompatibilityArity) {
  Specification spec;
  spec.graphs.push_back(chain_graph(2));
  spec.compatibility = CompatibilityMatrix(5);  // wrong size
  EXPECT_THROW(spec.validate(kPeTypes), Error);
}

TEST(SpecificationTest, ValidatesUnavailabilityVector) {
  Specification spec;
  spec.graphs.push_back(chain_graph(2));
  spec.unavailability_requirement = {1.5};  // out of [0,1]
  EXPECT_THROW(spec.validate(kPeTypes), Error);
  spec.unavailability_requirement = {0.5, 0.5};  // wrong arity
  EXPECT_THROW(spec.validate(kPeTypes), Error);
}

TEST(SpecificationTest, RejectsEmpty) {
  Specification spec;
  EXPECT_THROW(spec.validate(kPeTypes), Error);
}

}  // namespace
}  // namespace crusade
