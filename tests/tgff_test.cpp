// Unit tests for the TGFF-style workload generator, example profiles and
// Table 1 circuit set.
#include <gtest/gtest.h>

#include <algorithm>

#include "tgff/circuits.hpp"
#include "tgff/generator.hpp"
#include "tgff/profiles.hpp"

namespace crusade {
namespace {

const ResourceLibrary& lib() {
  static const ResourceLibrary l = telecom_1999();
  return l;
}

TEST(GeneratorTest, DeterministicPerSeed) {
  SpecGenerator gen(lib());
  SpecGenConfig cfg;
  cfg.total_tasks = 120;
  cfg.seed = 5;
  const Specification a = gen.generate(cfg);
  const Specification b = gen.generate(cfg);
  ASSERT_EQ(a.graphs.size(), b.graphs.size());
  for (std::size_t g = 0; g < a.graphs.size(); ++g) {
    ASSERT_EQ(a.graphs[g].task_count(), b.graphs[g].task_count());
    ASSERT_EQ(a.graphs[g].period(), b.graphs[g].period());
    for (int t = 0; t < a.graphs[g].task_count(); ++t)
      ASSERT_EQ(a.graphs[g].task(t).exec, b.graphs[g].task(t).exec);
  }
  cfg.seed = 6;
  const Specification c = gen.generate(cfg);
  // Different seed: at least some structural difference.
  bool different = a.graphs.size() != c.graphs.size();
  if (!different)
    for (std::size_t g = 0; g < a.graphs.size() && !different; ++g)
      different = a.graphs[g].task_count() != c.graphs[g].task_count();
  EXPECT_TRUE(different);
}

TEST(GeneratorTest, HonoursTaskBudget) {
  SpecGenerator gen(lib());
  SpecGenConfig cfg;
  cfg.total_tasks = 300;
  const Specification spec = gen.generate(cfg);
  EXPECT_EQ(spec.total_tasks(), 300);
  EXPECT_NO_THROW(spec.validate(lib().pe_count()));
}

TEST(GeneratorTest, PeriodsComeFromMenu) {
  SpecGenerator gen(lib());
  SpecGenConfig cfg;
  cfg.total_tasks = 200;
  cfg.periods = {kMillisecond, 10 * kMillisecond};
  cfg.period_weights = {1, 1};
  const Specification spec = gen.generate(cfg);
  for (const TaskGraph& g : spec.graphs)
    EXPECT_TRUE(g.period() == kMillisecond || g.period() == 10 * kMillisecond);
}

TEST(GeneratorTest, CompatibilityFamiliesAreCliques) {
  SpecGenerator gen(lib());
  SpecGenConfig cfg;
  cfg.total_tasks = 400;
  cfg.family_fraction = 1.0;
  cfg.family_size_min = cfg.family_size_max = 3;
  const Specification spec = gen.generate(cfg);
  ASSERT_TRUE(spec.compatibility.has_value());
  const auto& m = *spec.compatibility;
  // Compatibility from family construction must be transitive within a
  // clique: if a~b and b~c then a~c.
  const int n = m.graph_count();
  for (int a = 0; a < n; ++a)
    for (int b = 0; b < n; ++b)
      for (int c = 0; c < n; ++c) {
        if (a == b || b == c || a == c) continue;
        if (m.compatible(a, b) && m.compatible(b, c)) {
          EXPECT_TRUE(m.compatible(a, c));
        }
      }
}

TEST(GeneratorTest, NoCompatibilityWhenDisabled) {
  SpecGenerator gen(lib());
  SpecGenConfig cfg;
  cfg.total_tasks = 60;
  cfg.emit_compatibility = false;
  EXPECT_FALSE(gen.generate(cfg).compatibility.has_value());
}

TEST(GeneratorTest, FastGraphsAreHardwareDominated) {
  SpecGenerator gen(lib());
  SpecGenConfig cfg;
  cfg.total_tasks = 600;
  cfg.periods = {25 * kMicrosecond};
  cfg.period_weights = {1};
  cfg.seed = 9;
  const Specification spec = gen.generate(cfg);
  int hw_feasible = 0, total = 0;
  for (const TaskGraph& g : spec.graphs) {
    for (const Task& t : g.tasks()) {
      ++total;
      bool on_cpu = false;
      for (PeTypeId pe = 0; pe < lib().pe_count(); ++pe)
        if (lib().pe(pe).kind == PeKind::Cpu && t.feasible_on(pe))
          on_cpu = true;
      if (!on_cpu) ++hw_feasible;
    }
  }
  EXPECT_GT(static_cast<double>(hw_feasible) / total, 0.6);
}

TEST(GeneratorTest, SinksCarryDeadlines) {
  SpecGenerator gen(lib());
  SpecGenConfig cfg;
  cfg.total_tasks = 150;
  const Specification spec = gen.generate(cfg);
  for (const TaskGraph& g : spec.graphs)
    for (int t = 0; t < g.task_count(); ++t)
      if (g.is_sink(t)) {
        EXPECT_NE(g.effective_deadline(t), kNoTime);
      }
}

TEST(ProfilesTest, PaperTaskCounts) {
  const auto profiles = paper_profiles();
  ASSERT_EQ(profiles.size(), 8u);
  EXPECT_EQ(profiles.front().name, "A1TR");
  EXPECT_EQ(profiles.front().tasks, 1126);
  EXPECT_EQ(profiles.back().name, "NGXM");
  EXPECT_EQ(profiles.back().tasks, 7416);
  EXPECT_EQ(profile_by_name("HRXC").tasks, 4571);
  EXPECT_THROW(profile_by_name("nope"), Error);
}

TEST(ProfilesTest, ScaledConfigGenerates) {
  SpecGenerator gen(lib());
  const Specification spec =
      gen.generate(profile_config(profile_by_name("A1TR"), 0.05));
  EXPECT_NEAR(spec.total_tasks(), 1126 * 0.05, 3);
  EXPECT_TRUE(spec.compatibility.has_value());
}

TEST(CircuitsTest, TableOneRoster) {
  const auto circuits = table1_circuits();
  ASSERT_EQ(circuits.size(), 10u);
  EXPECT_EQ(circuits[0].name, "cvs1");
  EXPECT_EQ(circuits[0].pfus, 18);
  EXPECT_EQ(circuits[8].name, "wamxp");
  EXPECT_EQ(circuits[8].pfus, 84);
  for (const CircuitSpec& spec : circuits) {
    const Netlist n = make_circuit(spec);
    EXPECT_EQ(n.cell_count(), spec.pfus);
    EXPECT_EQ(n.name(), spec.name);
  }
}

TEST(CircuitsTest, DistinctPerName) {
  const Netlist a = make_circuit(CircuitSpec{"cvs1", 18});
  const Netlist b = make_circuit(CircuitSpec{"cvs2", 18});
  // Same PFU count, different name -> different connectivity.
  bool different = a.nets().size() != b.nets().size();
  for (std::size_t n = 0; !different && n < a.nets().size(); ++n)
    different = a.nets()[n].driver != b.nets()[n].driver ||
                a.nets()[n].sinks != b.nets()[n].sinks;
  EXPECT_TRUE(different);
}

}  // namespace
}  // namespace crusade
