// Survivability simulator (src/sim): schedule replay under injected faults.
//
// The acceptance bar proved here: across hundreds of seeded scenarios on
// several specifications, the simulator never renders FT-LIE on a feasible
// CRUSADE-FT result, every transient fault is observed by a check task on a
// *different* PE than the faulted one, and same-seed campaigns replay
// bit-identically.
#include <gtest/gtest.h>

#include <string>

#include "example_specs.hpp"
#include "ft/crusade_ft.hpp"
#include "sim/campaign.hpp"
#include "tgff/generator.hpp"

namespace crusade {
namespace {

const ResourceLibrary& lib() {
  static const ResourceLibrary l = telecom_1999();
  return l;
}

/// Synthesizes a spec with CRUSADE-FT and wires the SurvivalInput exactly
/// the way CrusadeFt::run does for its self-check sweep.  Members are
/// declaration-ordered so `flat` is built from the owned ft_spec.
struct Survivable {
  CrusadeFtResult r;
  FlatSpec flat;
  SurvivalInput input;

  explicit Survivable(const Specification& spec)
      : r(CrusadeFt(spec, lib(), CrusadeFtParams{}).run()), flat(r.ft_spec) {
    input.flat = &flat;
    input.arch = &r.synthesis.arch;
    input.task_cluster = &r.synthesis.task_cluster;
    input.schedule = &r.synthesis.schedule;
    input.graph_unavailability = r.dependability.graph_unavailability;
    input.boot_time_requirement = r.ft_spec.boot_time_requirement;
    input.pe_spares.assign(r.synthesis.arch.pes.size(), 0);
    for (const ServiceModule& module : r.dependability.modules)
      for (const int pe : module.pes)
        input.pe_spares[static_cast<std::size_t>(pe)] = module.spares;
  }
};

Specification generated_spec() {
  SpecGenerator gen(lib());
  SpecGenConfig cfg;
  cfg.total_tasks = 40;
  cfg.seed = 7;
  return gen.generate(cfg);
}

/// First scheduled application task (not a check) with a covering check.
int pick_app_task(const Survivable& s) {
  for (int tid = 0; tid < s.flat.task_count(); ++tid) {
    const Task& t = s.flat.task(tid);
    if (t.checks < 0 && t.covered_by >= 0 &&
        s.r.synthesis.schedule.task_start[tid] != kNoTime)
      return tid;
  }
  return -1;
}

/// First scheduled inter-PE edge (one a link-loss fault can target).
int pick_inter_pe_edge(const Survivable& s) {
  for (int eid = 0; eid < s.flat.edge_count(); ++eid)
    if (s.r.synthesis.arch.edge_link[eid] >= 0 &&
        s.r.synthesis.schedule.edge_start[eid] != kNoTime)
      return eid;
  return -1;
}

void expect_identical(const ScenarioOutcome& a, const ScenarioOutcome& b,
                      const std::string& context) {
  EXPECT_EQ(a.scenario.kind, b.scenario.kind) << context;
  EXPECT_EQ(a.scenario.seed, b.scenario.seed) << context;
  EXPECT_EQ(a.scenario.pe, b.scenario.pe) << context;
  EXPECT_EQ(a.scenario.mode, b.scenario.mode) << context;
  EXPECT_EQ(a.scenario.task, b.scenario.task) << context;
  EXPECT_EQ(a.scenario.edge, b.scenario.edge) << context;
  EXPECT_EQ(a.scenario.frame, b.scenario.frame) << context;
  EXPECT_EQ(a.scenario.at, b.scenario.at) << context;
  EXPECT_EQ(a.scenario.drops, b.scenario.drops) << context;
  EXPECT_EQ(a.verdict, b.verdict) << context;
  EXPECT_EQ(a.injected, b.injected) << context;
  EXPECT_EQ(a.detected, b.detected) << context;
  EXPECT_EQ(a.checker_task, b.checker_task) << context;
  EXPECT_EQ(a.checker_pe, b.checker_pe) << context;
  EXPECT_EQ(a.faulted_pe, b.faulted_pe) << context;
  EXPECT_EQ(a.deadline_misses, b.deadline_misses) << context;
  EXPECT_EQ(a.frames_lost, b.frames_lost) << context;
  EXPECT_EQ(a.retries, b.retries) << context;
  EXPECT_EQ(a.worst_boot, b.worst_boot) << context;
  EXPECT_EQ(a.affected_graphs, b.affected_graphs) << context;
  EXPECT_EQ(a.detail, b.detail) << context;
}

TEST(SimTest, BaselineReplayIsMasked) {
  const Survivable s(quickstart_spec(lib()));
  ASSERT_TRUE(s.r.synthesis.feasible);
  const ScenarioOutcome out = simulate_scenario(s.input, FaultScenario{});
  EXPECT_EQ(out.verdict, Verdict::Masked) << out.detail;
  EXPECT_FALSE(out.injected);
  EXPECT_EQ(out.deadline_misses, 0);
  EXPECT_EQ(out.frames_lost, 0);
  EXPECT_TRUE(out.affected_graphs.empty());
}

TEST(SimTest, TransientCaughtByCheckerOnDifferentPe) {
  const Survivable s(quickstart_spec(lib()));
  ASSERT_TRUE(s.r.synthesis.feasible);
  const int tid = pick_app_task(s);
  ASSERT_GE(tid, 0);
  FaultScenario scenario;
  scenario.kind = FaultKind::TransientTask;
  scenario.task = tid;
  const ScenarioOutcome out = simulate_scenario(s.input, scenario);
  EXPECT_NE(out.verdict, Verdict::FtLie) << out.detail;
  EXPECT_TRUE(out.detected);
  ASSERT_GE(out.checker_task, 0);
  EXPECT_GE(out.checker_pe, 0);
  // The §6 exclusion holds at runtime: the observer survives the fault
  // domain because it executes somewhere else.
  EXPECT_NE(out.checker_pe, out.faulted_pe);
  EXPECT_EQ(s.input.task_pe(out.checker_task), out.checker_pe);
}

TEST(SimTest, LinkLossRetriesAreBoundedAndDetected) {
  const Survivable s(quickstart_spec(lib()));
  ASSERT_TRUE(s.r.synthesis.feasible);
  const int eid = pick_inter_pe_edge(s);
  if (eid < 0) GTEST_SKIP() << "schedule keeps all edges intra-PE";
  SimParams params;
  FaultScenario scenario;
  scenario.kind = FaultKind::LinkLoss;
  scenario.edge = eid;
  scenario.drops = 2;
  ScenarioOutcome out = simulate_scenario(s.input, scenario, params);
  EXPECT_TRUE(out.detected);
  EXPECT_EQ(out.retries, 2);
  EXPECT_NE(out.verdict, Verdict::FtLie) << out.detail;
  // Exhausting the retry budget drops the message instead of retrying
  // forever: the retry count saturates at the bound.
  scenario.drops = params.max_link_retries + 5;
  out = simulate_scenario(s.input, scenario, params);
  EXPECT_EQ(out.retries, params.max_link_retries);
  EXPECT_NE(out.verdict, Verdict::FtLie) << out.detail;
}

TEST(SimTest, PeDeathEitherMaskedOrHonestlyDegraded) {
  const Survivable s(fault_tolerant_sonet_spec(lib()));
  ASSERT_TRUE(s.r.synthesis.feasible);
  // Kill every PE that hosts work, at time zero (worst case: nothing of the
  // frame has run yet).  Each death must be observed and judged honestly.
  for (int pe = 0; pe < static_cast<int>(s.r.synthesis.arch.pes.size());
       ++pe) {
    bool hosts = false;
    for (int tid = 0; tid < s.flat.task_count(); ++tid)
      if (s.input.task_pe(tid) == pe) hosts = true;
    if (!hosts) continue;
    FaultScenario scenario;
    scenario.kind = FaultKind::PeDeath;
    scenario.pe = pe;
    scenario.at = 0;
    const ScenarioOutcome out = simulate_scenario(s.input, scenario);
    EXPECT_NE(out.verdict, Verdict::FtLie)
        << "PE " << pe << ": " << out.detail;
    EXPECT_TRUE(out.detected) << "PE " << pe;
  }
}

TEST(SimTest, CampaignsAreCleanAcrossSpecs) {
  // >= 300 scenarios across three specifications (the acceptance floor):
  // zero FT-LIE, every transient cross-PE, tallies consistent.
  const Specification specs[] = {quickstart_spec(lib()),
                                 fault_tolerant_sonet_spec(lib()),
                                 generated_spec()};
  int total = 0;
  for (const Specification& spec : specs) {
    const Survivable s(spec);
    ASSERT_TRUE(s.r.synthesis.feasible) << spec.name;
    CampaignParams params;
    params.seeds = 100;
    const CampaignResult c = run_campaign(s.input, params);
    EXPECT_EQ(c.scenarios, params.seeds + 1) << spec.name;  // + baseline
    EXPECT_EQ(c.masked + c.degraded + c.ft_lies, c.scenarios) << spec.name;
    EXPECT_TRUE(c.clean()) << spec.name << ": " << c.ft_lies << " FT-LIE(s)";
    EXPECT_EQ(c.transients_cross_pe, c.transients) << spec.name;
    for (const ScenarioOutcome& out : c.outcomes) {
      EXPECT_NE(out.verdict, Verdict::FtLie)
          << spec.name << " seed " << out.scenario.seed << ": " << out.detail;
      if (out.scenario.kind == FaultKind::TransientTask) {
        EXPECT_TRUE(out.detected) << spec.name;
        EXPECT_NE(out.checker_pe, out.faulted_pe) << spec.name;
      }
    }
    total += c.scenarios;
  }
  EXPECT_GE(total, 300);
}

TEST(SimTest, SameSeedCampaignsReplayIdentically) {
  const Survivable s(quickstart_spec(lib()));
  ASSERT_TRUE(s.r.synthesis.feasible);
  CampaignParams params;
  params.seeds = 60;
  params.seed_base = 42;
  const CampaignResult a = run_campaign(s.input, params);
  const CampaignResult b = run_campaign(s.input, params);
  EXPECT_EQ(a.scenarios, b.scenarios);
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.ft_lies, b.ft_lies);
  EXPECT_EQ(a.transients, b.transients);
  EXPECT_EQ(a.transients_cross_pe, b.transients_cross_pe);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i)
    expect_identical(a.outcomes[i], b.outcomes[i],
                     "outcome " + std::to_string(i));
  // A different seed base draws a different campaign (the seed actually
  // feeds the scenario, it is not decorative).
  params.seed_base = 43;
  const CampaignResult c = run_campaign(s.input, params);
  bool any_diff = false;
  for (std::size_t i = 0; i < c.outcomes.size(); ++i) {
    const FaultScenario& x = a.outcomes[i].scenario;
    const FaultScenario& y = c.outcomes[i].scenario;
    if (x.kind != y.kind || x.task != y.task || x.pe != y.pe ||
        x.edge != y.edge || x.frame != y.frame || x.at != y.at)
      any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SimTest, SelfCheckSweepLandsInResultAndStats) {
  CrusadeFtParams params;
  params.survive_check = true;
  params.survive_seeds = 24;
  const CrusadeFtResult r =
      CrusadeFt(quickstart_spec(lib()), lib(), params).run();
  ASSERT_TRUE(r.synthesis.feasible);
  EXPECT_EQ(r.survival.scenarios, params.survive_seeds + 1);
  EXPECT_TRUE(r.survival.clean());
  EXPECT_EQ(r.survival.transients_cross_pe, r.survival.transients);
  EXPECT_EQ(r.synthesis.stats.survive_scenarios, r.survival.scenarios);
  EXPECT_EQ(r.synthesis.stats.survive_ft_lies, 0);
  EXPECT_GT(r.synthesis.stats.survive_seconds, 0.0);
}

}  // namespace
}  // namespace crusade
