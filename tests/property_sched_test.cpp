// Additional property suites for the scheduling stack: fuzzed timeline
// placement post-conditions, scheduler determinism, and RTA arithmetic.
#include <gtest/gtest.h>

#include "alloc/allocation.hpp"
#include "sched/scheduler.hpp"
#include "tgff/generator.hpp"

namespace crusade {
namespace {

// --- fuzzed earliest_fit post-conditions ---

class TimelineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimelineFuzz, PlacementsNeverOverlapSameMode) {
  Rng rng(GetParam());
  const TimeNs periods[] = {1'000, 2'000, 4'000, 8'000, 16'000};
  for (int round = 0; round < 40; ++round) {
    Timeline tl;
    // Place a random sequence of windows via earliest_fit and verify the
    // invariant after every placement.
    for (int i = 0; i < 30; ++i) {
      const TimeNs period = periods[rng.uniform_int(0, 4)];
      const TimeNs duration = rng.uniform_int(50, period / 3);
      const TimeNs ready = rng.uniform_int(0, period);
      const int mode = static_cast<int>(rng.uniform_int(-1, 2));
      const TimeNs start = tl.earliest_fit(ready, duration, period, mode);
      if (start == kNoTime) continue;  // saturated: acceptable
      ASSERT_GE(start, ready);
      const PeriodicWindow placed{start, start + duration, period};
      for (const auto& w : tl.windows()) {
        const bool conflicts =
            mode < 0 || w.mode < 0 || w.mode == mode;
        if (conflicts) {
          ASSERT_FALSE(periodic_overlap(placed, w.span))
              << "seed " << GetParam() << " round " << round;
        }
      }
      tl.add(start, start + duration, period, mode, i);
    }
  }
}

TEST_P(TimelineFuzz, FitIsEarliestAmongProbes) {
  // Weaker minimality check: no strictly earlier start in [ready, start)
  // sampled on a grid admits the window.
  Rng rng(GetParam() ^ 0x5eed);
  Timeline tl;
  for (int i = 0; i < 12; ++i) {
    const TimeNs start = rng.uniform_int(0, 900);
    tl.add(start, start + rng.uniform_int(20, 120), 1'000, -1, i);
  }
  for (int trial = 0; trial < 50; ++trial) {
    const TimeNs ready = rng.uniform_int(0, 500);
    const TimeNs duration = rng.uniform_int(10, 200);
    const TimeNs got = tl.earliest_fit(ready, duration, 2'000, -1);
    if (got == kNoTime) continue;
    for (TimeNs probe = ready; probe < got; probe += 7) {
      const PeriodicWindow cand{probe, probe + duration, 2'000};
      bool clear = true;
      for (const auto& w : tl.windows())
        if (periodic_overlap(cand, w.span)) clear = false;
      ASSERT_FALSE(clear) << "earlier fit at " << probe << " missed (got "
                          << got << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelineFuzz,
                         ::testing::Values(7u, 8u, 9u));

// --- scheduler determinism ---

class SchedDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedDeterminism, SameProblemSameSchedule) {
  static const ResourceLibrary lib = telecom_1999();
  SpecGenerator gen(lib);
  SpecGenConfig cfg;
  cfg.total_tasks = 60;
  cfg.seed = GetParam();
  const Specification spec = gen.generate(cfg);
  const FlatSpec flat(spec);

  // Everything on one CPU + one FPGA, split by feasibility.
  SchedProblem p;
  p.flat = &flat;
  p.resources.push_back(
      SchedResourceInfo{true, false, 5 * kMicrosecond, {}});
  p.resources.push_back(SchedResourceInfo{false, true, 0, {}});
  p.task_resource.assign(flat.task_count(), -1);
  p.task_mode.assign(flat.task_count(), -1);
  p.task_exec.assign(flat.task_count(), 0);
  const PeTypeId cpu = lib.find_pe("MC68060");
  const PeTypeId fpga = lib.find_pe("XC6700");
  for (int t = 0; t < flat.task_count(); ++t) {
    if (flat.task(t).feasible_on(cpu)) {
      p.task_resource[t] = 0;
      p.task_exec[t] = flat.task(t).exec[cpu];
    } else if (flat.task(t).feasible_on(fpga)) {
      p.task_resource[t] = 1;
      p.task_exec[t] = flat.task(t).exec[fpga];
    }
  }
  p.edge_resource.assign(flat.edge_count(), -1);
  p.edge_comm.assign(flat.edge_count(), 0);

  const PriorityLevels levels = scheduling_levels(flat, lib);
  const ScheduleResult a = run_list_scheduler(p, levels);
  const ScheduleResult b = run_list_scheduler(p, levels);
  ASSERT_EQ(a.task_start, b.task_start);
  ASSERT_EQ(a.task_finish, b.task_finish);
  ASSERT_EQ(a.total_tardiness, b.total_tardiness);
  ASSERT_EQ(a.placement_failures, b.placement_failures);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedDeterminism,
                         ::testing::Values(301u, 302u, 303u));

// --- response-time arithmetic on a crafted case ---

TEST(PreemptionMathTest, ExactInterferenceAccounting) {
  // One 1ms-period task (exec 200us, overhead 10us per hit) interferes with
  // a 10ms task of exec 2ms.  RTA fixed point:
  //   c = 2000 + ceil(c/1000)*(200 + 10)   [microseconds]
  // c = 2000 -> 2 hits? ceil(2000/1000)=2 -> c = 2420
  //   -> ceil(2420/1000)=3 -> c = 2630 -> ceil=3 -> stable 2630us.
  Specification spec;
  TaskGraph fast("fast", kMillisecond);
  Task tf;
  tf.name = "f";
  tf.exec = {200 * kMicrosecond};
  tf.deadline = kMillisecond;
  fast.add_task(tf);
  spec.graphs.push_back(std::move(fast));
  TaskGraph slow("slow", 10 * kMillisecond);
  Task ts;
  ts.name = "s";
  ts.exec = {2 * kMillisecond};
  ts.deadline = 10 * kMillisecond;
  slow.add_task(ts);
  spec.graphs.push_back(std::move(slow));
  const FlatSpec flat(spec);

  SchedProblem p;
  p.flat = &flat;
  p.resources.push_back(
      SchedResourceInfo{true, false, 10 * kMicrosecond, {}});
  p.task_resource = {0, 0};
  p.task_mode = {-1, -1};
  p.task_exec = {200 * kMicrosecond, 2 * kMillisecond};
  p.edge_resource = {};
  p.edge_comm = {};
  const PriorityLevels levels =
      priority_levels(flat, p.task_exec, std::vector<TimeNs>{});
  const ScheduleResult r = run_list_scheduler(p, levels);
  ASSERT_TRUE(r.feasible);
  // The fast task goes first (higher priority); the slow one is inflated.
  EXPECT_EQ(r.task_finish[1] - r.task_start[1], 2'630 * kMicrosecond);
}

// --- unplace bookkeeping round-trip ---

TEST(UnplaceTest, RestoresCapacityAndLinkDemand) {
  static const ResourceLibrary lib = telecom_1999();
  SpecGenerator gen(lib);
  SpecGenConfig cfg;
  cfg.total_tasks = 40;
  cfg.seed = 5;
  const Specification spec = gen.generate(cfg);
  const FlatSpec flat(spec);
  const auto clusters = cluster_tasks(flat, lib, ClusteringParams{});
  Allocator allocator(flat, lib, nullptr, AllocParams{});
  AllocationOutcome outcome = allocator.run(clusters);
  ASSERT_TRUE(outcome.feasible);

  // Rip every cluster back out via the repair path's primitive (exercised
  // through evacuation on a copy): all capacity counters must return to
  // zero when every device empties.
  Architecture arch = outcome.arch;
  // Evacuation keeps the architecture valid; instead verify global
  // conservation: sum of per-mode pfus equals sum over clusters.
  int pfus_in_arch = 0;
  for (const PeInstance& inst : arch.pes)
    for (const Mode& m : inst.modes) pfus_in_arch += m.pfus_used;
  int pfus_in_clusters = 0;
  for (const Cluster& c : clusters) pfus_in_clusters += c.pfus;
  EXPECT_EQ(pfus_in_arch, pfus_in_clusters);

  std::int64_t mem_in_arch = 0;
  for (const PeInstance& inst : arch.pes) mem_in_arch += inst.memory_used;
  std::int64_t mem_in_clusters = 0;
  for (const Cluster& c : clusters) mem_in_clusters += c.memory;
  EXPECT_EQ(mem_in_arch, mem_in_clusters);
}

}  // namespace
}  // namespace crusade
