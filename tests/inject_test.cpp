// Spec fault-injection harness (src/validate/inject.hpp).
//
// The robustness contract under mutation: for ANY mutated specification,
// CRUSADE either (a) rejects the input with a typed crusade::Error, (b)
// reports an infeasible result with diagnostics, or (c) returns a feasible
// architecture that the independent validator confirms.  It never crashes,
// never hangs (search budgets bound every run) and never lies (a "feasible"
// the validator rejects fails the test).  Well over 500 seeded mutations
// run across structural and text-level corruption.
#include <gtest/gtest.h>

#include <cmath>
#include <iterator>
#include <limits>
#include <sstream>
#include <string>

#include "analyze/analyzer.hpp"
#include "core/crusade.hpp"
#include "example_specs.hpp"
#include "ft/crusade_ft.hpp"
#include "graph/spec_io.hpp"
#include "util/rng.hpp"
#include "validate/inject.hpp"

namespace crusade {
namespace {

const ResourceLibrary& lib() {
  static const ResourceLibrary l = telecom_1999();
  return l;
}

struct FuzzTally {
  int mutated = 0;
  int rejected = 0;    // crusade::Error out of parsing/validation/synthesis
  int infeasible = 0;  // honest "no" with diagnostics
  int feasible = 0;    // validator-confirmed architecture
  int lint_errors = 0;  // mutants the static analyzer proved hopeless
};

/// Runs one mutated spec through the full pipeline and scores the outcome.
/// Anything but the three honest outcomes fails the test.
void run_pipeline(const Specification& spec, FuzzTally& tally,
                  const std::string& context) {
  CrusadeParams params;
  // Budgets bound the run: a hostile mutation may open a hopeless search
  // space, and "never hangs" is part of the contract under test.
  params.alloc.max_iterations = 400;
  params.merge.budget = 60;
  // Static analysis first: the analyzer must digest ANY in-memory mutant
  // without throwing, and its errors claim provable infeasibility — a
  // claim checked against the synthesis outcome below.
  const AnalysisReport lint = analyze_specification(spec, lib());
  if (lint.has_errors()) ++tally.lint_errors;
  try {
    const CrusadeResult r = Crusade(spec, lib(), params).run();
    if (r.feasible) {
      ++tally.feasible;
      // Never lie: a claimed-feasible result must re-verify.
      EXPECT_TRUE(r.validation.clean())
          << context << "\n" << r.validation.summary(50);
      // Lint soundness: every lint *error* is a necessary condition for
      // feasibility, so a validator-confirmed feasible architecture from a
      // lint-rejected spec would prove the analyzer wrong.
      EXPECT_FALSE(lint.has_errors())
          << context << "\nlint claimed infeasibility:\n" << lint.summary();
    } else {
      ++tally.infeasible;
      // Graceful degradation: an infeasible verdict explains itself.
      EXPECT_FALSE(r.diagnosis.empty()) << context;
    }
  } catch (const Error&) {
    ++tally.rejected;  // typed rejection is an honest outcome
  }
  // Any other exception type propagates and fails the test: the pipeline
  // must never surface std::bad_alloc, std::out_of_range, UB traps, ...
}

TEST(InjectTest, StructuralMutationsNeverCrashOrLie) {
  const Specification bases[] = {quickstart_spec(lib()),
                                 base_station_spec(lib())};
  FuzzTally tally;
  for (std::uint64_t seed = 1; seed <= 150; ++seed) {
    for (std::size_t b = 0; b < 2; ++b) {
      Rng rng(0xC0FFEE ^ (seed * 2654435761u + b));
      Specification mutant = bases[b];
      const int rounds = 1 + static_cast<int>(rng.uniform_int(0, 2));
      std::string context = "seed " + std::to_string(seed) + " base " +
                            std::to_string(b) + ":";
      for (int i = 0; i < rounds; ++i) {
        const Mutation m = mutate_specification(mutant, rng);
        if (m.applied) context += " [" + m.description + "]";
      }
      ++tally.mutated;
      run_pipeline(mutant, tally, context);
    }
  }
  EXPECT_EQ(tally.mutated, 300);
  EXPECT_EQ(tally.rejected + tally.infeasible + tally.feasible, 300);
  // The mutator mix guarantees all three outcomes actually occur — a fuzz
  // run where nothing is ever rejected (or nothing ever survives) would
  // mean the harness is not exercising what it claims.
  EXPECT_GT(tally.rejected, 0);
  EXPECT_GT(tally.feasible, 0);
}

TEST(InjectTest, TextCorruptionNeverCrashesTheParser) {
  std::ostringstream out;
  write_specification(out, quickstart_spec(lib()), lib());
  const std::string pristine = out.str();

  FuzzTally tally;
  int parsed = 0, parse_rejected = 0;
  for (std::uint64_t seed = 1; seed <= 250; ++seed) {
    Rng rng(0xBADF00D + seed * 977);
    std::string text = pristine;
    const int rounds = 1 + static_cast<int>(rng.uniform_int(0, 1));
    std::string context = "text seed " + std::to_string(seed) + ":";
    for (int i = 0; i < rounds; ++i) {
      const Mutation m = corrupt_spec_text(text, rng);
      if (m.applied) context += " [" + m.description + "]";
    }
    ++tally.mutated;
    Specification spec;
    try {
      std::istringstream in(text);
      spec = read_specification(in, lib());
    } catch (const Error& e) {
      ++parse_rejected;
      ++tally.rejected;
      // Parse-phase rejections map onto the lint A000 diagnostic, and
      // parser errors always carry the offending line.
      const Diagnostic d = parse_error_diagnostic(e);
      EXPECT_EQ(d.id, "A000");
      if (std::string(e.what()).rfind("spec line ", 0) == 0) {
        EXPECT_GT(d.line, 0) << context << "\n" << e.what();
      }
      continue;
    }
    ++parsed;
    // Corruption that still parses must still synthesize honestly.
    run_pipeline(spec, tally, context);
  }
  EXPECT_EQ(tally.mutated, 250);
  EXPECT_EQ(tally.rejected + tally.infeasible + tally.feasible, 250);
  // Hostile tokens ("999999999min", "5uss", truncated lines...) must
  // actually hit the parser's error paths, and benign corruption (deleted
  // comment, duplicated edge line) must still reach synthesis.
  EXPECT_GT(parse_rejected, 0);
  EXPECT_GT(parsed, 0);
}

/// A DependabilityReport that reaches the caller must be self-consistent:
/// every unavailability a finite probability, every meets flag derived from
/// the numbers it sits next to.  NaN poisoning any of them is the exact
/// "meets requirements" lie the Markov hardening exists to prevent.
void expect_consistent_report(const CrusadeFtResult& r,
                              const std::string& context) {
  for (const ServiceModule& m : r.dependability.modules) {
    EXPECT_TRUE(std::isfinite(m.unavailability) && m.unavailability >= 0 &&
                m.unavailability <= 1)
        << context << " module unavailability " << m.unavailability;
    EXPECT_TRUE(std::isfinite(m.fit_total)) << context;
  }
  const auto& dep = r.dependability;
  ASSERT_EQ(dep.graph_unavailability.size(), dep.graph_meets.size())
      << context;
  bool all = true;
  for (std::size_t g = 0; g < dep.graph_unavailability.size(); ++g) {
    const double u = dep.graph_unavailability[g];
    EXPECT_TRUE(std::isfinite(u) && u >= 0 && u <= 1)
        << context << " graph " << g << " unavailability " << u;
    if (g < r.ft_spec.unavailability_requirement.size()) {
      const double req = r.ft_spec.unavailability_requirement[g];
      EXPECT_EQ(dep.graph_meets[g] != 0, !(req > 0 && u > req))
          << context << " graph " << g << " meets flag inconsistent";
    }
    all = all && dep.graph_meets[g] != 0;
  }
  EXPECT_EQ(dep.meets_requirements, all) << context;
}

/// FT-relevant mutations: FIT rates (library), MTTR (parameters) and
/// per-graph unavailability requirements (specification).  Every mutant is
/// lint-caught, a typed Error, or yields a self-consistent report — never a
/// crash or a NaN-backed "meets requirements".
TEST(InjectTest, FtFieldMutationsNeverCrashOrLie) {
  const Specification bases[] = {quickstart_spec(lib()),
                                 fault_tolerant_sonet_spec(lib())};
  int rejected = 0, reported = 0, lint_caught = 0;
  const double kPoison[] = {std::numeric_limits<double>::quiet_NaN(),
                            std::numeric_limits<double>::infinity(),
                            -100.0, 0.0, 1e300};
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    for (std::size_t b = 0; b < 2; ++b) {
      Rng rng(0xFA017 ^ (seed * 2654435761u + b));
      Specification mutant = bases[b];
      ResourceLibrary mlib = lib();
      CrusadeFtParams params;
      params.base.alloc.max_iterations = 400;
      params.base.merge.budget = 60;
      std::string context =
          "ft seed " + std::to_string(seed) + " base " + std::to_string(b);

      const int family = static_cast<int>(rng.uniform_int(0, 2));
      const double poison =
          kPoison[rng.uniform_int(0, std::size(kPoison) - 1)];
      if (family == 0) {
        // Unavailability requirements (spec-level, lint-visible as A040).
        mutant.unavailability_requirement.assign(mutant.graphs.size(),
                                                 12.0 / 525600.0);
        const auto g = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(mutant.graphs.size()) - 1));
        mutant.unavailability_requirement[g] = poison;
        context += " unavailability := " + std::to_string(poison);
      } else if (family == 1) {
        params.dependability.mttr_hours =
            rng.chance(0.5) ? poison : -poison;
        context += " mttr := " +
                   std::to_string(params.dependability.mttr_hours);
      } else {
        // FIT rates: rebuild the library with one poisoned type.
        ResourceLibrary lib2;
        lib2.assumed_ports = mlib.assumed_ports;
        const int target = static_cast<int>(
            rng.uniform_int(0, mlib.pe_count() + mlib.link_count() - 1));
        for (int i = 0; i < mlib.pe_count(); ++i) {
          PeType pe = mlib.pe(i);
          if (i == target) pe.fit_rate = poison;
          lib2.add_pe(pe);
        }
        for (int i = 0; i < mlib.link_count(); ++i) {
          LinkType link = mlib.link(i);
          if (mlib.pe_count() + i == target) link.fit_rate = poison;
          lib2.add_link(link);
        }
        mlib = lib2;
        context += " fit := " + std::to_string(poison);
      }

      const AnalysisReport lint = analyze_specification(mutant, mlib);
      if (lint.has_errors()) ++lint_caught;
      try {
        const CrusadeFtResult r = CrusadeFt(mutant, mlib, params).run();
        ++reported;
        expect_consistent_report(r, context);
        EXPECT_FALSE(lint.has_errors())
            << context << "\nlint claimed infeasibility:\n" << lint.summary();
      } catch (const Error&) {
        ++rejected;  // typed rejection is an honest outcome
      }
    }
  }
  EXPECT_EQ(rejected + reported, 120);
  // The poison list guarantees both honest outcomes occur: NaN/negative
  // values must be rejected, zero-FIT / huge-but-finite values must flow
  // through to a (clamped, finite) report.
  EXPECT_GT(rejected, 0);
  EXPECT_GT(reported, 0);
  EXPECT_GT(lint_caught, 0);
}

TEST(InjectTest, MutatorsAreDeterministic) {
  for (std::uint64_t seed : {7u, 42u, 1234u}) {
    Specification a = quickstart_spec(lib());
    Specification b = quickstart_spec(lib());
    Rng ra(seed), rb(seed);
    const Mutation ma = mutate_specification(a, ra);
    const Mutation mb = mutate_specification(b, rb);
    EXPECT_EQ(ma.kind, mb.kind);
    EXPECT_EQ(ma.description, mb.description);
    EXPECT_EQ(ma.applied, mb.applied);
  }
  const std::string base = "graph g period 10ms\ntask t exec *=1ms\n";
  for (std::uint64_t seed : {7u, 42u, 1234u}) {
    std::string a = base, b = base;
    Rng ra(seed), rb(seed);
    corrupt_spec_text(a, ra);
    corrupt_spec_text(b, rb);
    EXPECT_EQ(a, b);
  }
}

}  // namespace
}  // namespace crusade
