// Spec fault-injection harness (src/validate/inject.hpp).
//
// The robustness contract under mutation: for ANY mutated specification,
// CRUSADE either (a) rejects the input with a typed crusade::Error, (b)
// reports an infeasible result with diagnostics, or (c) returns a feasible
// architecture that the independent validator confirms.  It never crashes,
// never hangs (search budgets bound every run) and never lies (a "feasible"
// the validator rejects fails the test).  Well over 500 seeded mutations
// run across structural and text-level corruption.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "analyze/analyzer.hpp"
#include "core/crusade.hpp"
#include "example_specs.hpp"
#include "graph/spec_io.hpp"
#include "util/rng.hpp"
#include "validate/inject.hpp"

namespace crusade {
namespace {

const ResourceLibrary& lib() {
  static const ResourceLibrary l = telecom_1999();
  return l;
}

struct FuzzTally {
  int mutated = 0;
  int rejected = 0;    // crusade::Error out of parsing/validation/synthesis
  int infeasible = 0;  // honest "no" with diagnostics
  int feasible = 0;    // validator-confirmed architecture
  int lint_errors = 0;  // mutants the static analyzer proved hopeless
};

/// Runs one mutated spec through the full pipeline and scores the outcome.
/// Anything but the three honest outcomes fails the test.
void run_pipeline(const Specification& spec, FuzzTally& tally,
                  const std::string& context) {
  CrusadeParams params;
  // Budgets bound the run: a hostile mutation may open a hopeless search
  // space, and "never hangs" is part of the contract under test.
  params.alloc.max_iterations = 400;
  params.merge.budget = 60;
  // Static analysis first: the analyzer must digest ANY in-memory mutant
  // without throwing, and its errors claim provable infeasibility — a
  // claim checked against the synthesis outcome below.
  const AnalysisReport lint = analyze_specification(spec, lib());
  if (lint.has_errors()) ++tally.lint_errors;
  try {
    const CrusadeResult r = Crusade(spec, lib(), params).run();
    if (r.feasible) {
      ++tally.feasible;
      // Never lie: a claimed-feasible result must re-verify.
      EXPECT_TRUE(r.validation.clean())
          << context << "\n" << r.validation.summary(50);
      // Lint soundness: every lint *error* is a necessary condition for
      // feasibility, so a validator-confirmed feasible architecture from a
      // lint-rejected spec would prove the analyzer wrong.
      EXPECT_FALSE(lint.has_errors())
          << context << "\nlint claimed infeasibility:\n" << lint.summary();
    } else {
      ++tally.infeasible;
      // Graceful degradation: an infeasible verdict explains itself.
      EXPECT_FALSE(r.diagnosis.empty()) << context;
    }
  } catch (const Error&) {
    ++tally.rejected;  // typed rejection is an honest outcome
  }
  // Any other exception type propagates and fails the test: the pipeline
  // must never surface std::bad_alloc, std::out_of_range, UB traps, ...
}

TEST(InjectTest, StructuralMutationsNeverCrashOrLie) {
  const Specification bases[] = {quickstart_spec(lib()),
                                 base_station_spec(lib())};
  FuzzTally tally;
  for (std::uint64_t seed = 1; seed <= 150; ++seed) {
    for (std::size_t b = 0; b < 2; ++b) {
      Rng rng(0xC0FFEE ^ (seed * 2654435761u + b));
      Specification mutant = bases[b];
      const int rounds = 1 + static_cast<int>(rng.uniform_int(0, 2));
      std::string context = "seed " + std::to_string(seed) + " base " +
                            std::to_string(b) + ":";
      for (int i = 0; i < rounds; ++i) {
        const Mutation m = mutate_specification(mutant, rng);
        if (m.applied) context += " [" + m.description + "]";
      }
      ++tally.mutated;
      run_pipeline(mutant, tally, context);
    }
  }
  EXPECT_EQ(tally.mutated, 300);
  EXPECT_EQ(tally.rejected + tally.infeasible + tally.feasible, 300);
  // The mutator mix guarantees all three outcomes actually occur — a fuzz
  // run where nothing is ever rejected (or nothing ever survives) would
  // mean the harness is not exercising what it claims.
  EXPECT_GT(tally.rejected, 0);
  EXPECT_GT(tally.feasible, 0);
}

TEST(InjectTest, TextCorruptionNeverCrashesTheParser) {
  std::ostringstream out;
  write_specification(out, quickstart_spec(lib()), lib());
  const std::string pristine = out.str();

  FuzzTally tally;
  int parsed = 0, parse_rejected = 0;
  for (std::uint64_t seed = 1; seed <= 250; ++seed) {
    Rng rng(0xBADF00D + seed * 977);
    std::string text = pristine;
    const int rounds = 1 + static_cast<int>(rng.uniform_int(0, 1));
    std::string context = "text seed " + std::to_string(seed) + ":";
    for (int i = 0; i < rounds; ++i) {
      const Mutation m = corrupt_spec_text(text, rng);
      if (m.applied) context += " [" + m.description + "]";
    }
    ++tally.mutated;
    Specification spec;
    try {
      std::istringstream in(text);
      spec = read_specification(in, lib());
    } catch (const Error& e) {
      ++parse_rejected;
      ++tally.rejected;
      // Parse-phase rejections map onto the lint A000 diagnostic, and
      // parser errors always carry the offending line.
      const Diagnostic d = parse_error_diagnostic(e);
      EXPECT_EQ(d.id, "A000");
      if (std::string(e.what()).rfind("spec line ", 0) == 0) {
        EXPECT_GT(d.line, 0) << context << "\n" << e.what();
      }
      continue;
    }
    ++parsed;
    // Corruption that still parses must still synthesize honestly.
    run_pipeline(spec, tally, context);
  }
  EXPECT_EQ(tally.mutated, 250);
  EXPECT_EQ(tally.rejected + tally.infeasible + tally.feasible, 250);
  // Hostile tokens ("999999999min", "5uss", truncated lines...) must
  // actually hit the parser's error paths, and benign corruption (deleted
  // comment, duplicated edge line) must still reach synthesis.
  EXPECT_GT(parse_rejected, 0);
  EXPECT_GT(parsed, 0);
}

TEST(InjectTest, MutatorsAreDeterministic) {
  for (std::uint64_t seed : {7u, 42u, 1234u}) {
    Specification a = quickstart_spec(lib());
    Specification b = quickstart_spec(lib());
    Rng ra(seed), rb(seed);
    const Mutation ma = mutate_specification(a, ra);
    const Mutation mb = mutate_specification(b, rb);
    EXPECT_EQ(ma.kind, mb.kind);
    EXPECT_EQ(ma.description, mb.description);
    EXPECT_EQ(ma.applied, mb.applied);
  }
  const std::string base = "graph g period 10ms\ntask t exec *=1ms\n";
  for (std::uint64_t seed : {7u, 42u, 1234u}) {
    std::string a = base, b = base;
    Rng ra(seed), rb(seed);
    corrupt_spec_text(a, ra);
    corrupt_spec_text(b, rb);
    EXPECT_EQ(a, b);
  }
}

}  // namespace
}  // namespace crusade
