// Unit tests for the fault-tolerance extension: transformation, Markov
// availability, service modules, spares, and the CRUSADE-FT driver.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ft/crusade_ft.hpp"
#include "tgff/generator.hpp"

namespace crusade {
namespace {

const ResourceLibrary& lib() {
  static const ResourceLibrary l = telecom_1999();
  return l;
}

Task sw_task(const std::string& name, TimeNs exec, bool has_assertion,
             bool transparent, TimeNs deadline = kNoTime) {
  Task t;
  t.name = name;
  t.exec.assign(lib().pe_count(), kNoTime);
  for (PeTypeId pe = 0; pe < lib().pe_count(); ++pe)
    if (lib().pe(pe).kind == PeKind::Cpu)
      t.exec[pe] = static_cast<TimeNs>(
          static_cast<double>(exec) / lib().pe(pe).speed_factor);
  t.memory = {8 * 1024, 4 * 1024, 1 * 1024};
  t.deadline = deadline;
  t.has_assertion = has_assertion;
  t.error_transparent = transparent;
  return t;
}

// --- transformation (§6) ---

TEST(FtTransformTest, AssertionAddedWithExclusion) {
  Specification spec;
  TaskGraph g("g", 100 * kMillisecond);
  g.add_task(sw_task("t", kMillisecond, /*assert=*/true, /*transp=*/false,
                     100 * kMillisecond));
  spec.graphs.push_back(std::move(g));

  FtTransformReport report;
  const Specification ft =
      add_fault_tolerance(spec, lib(), FtParams{}, &report);
  EXPECT_EQ(report.assertions_added, 1);
  EXPECT_EQ(report.duplicate_compare_added, 0);
  EXPECT_EQ(ft.graphs[0].task_count(), 2);
  EXPECT_EQ(ft.graphs[0].edge_count(), 1);  // t -> assert
  // The checker must not share a PE with the checked task.
  const auto& excl = ft.graphs[0].task(0).exclusions;
  EXPECT_NE(std::find(excl.begin(), excl.end(), 1), excl.end());
  EXPECT_NO_THROW(ft.validate(lib().pe_count()));
}

TEST(FtTransformTest, DuplicateAndCompareWhenNoAssertion) {
  Specification spec;
  TaskGraph g("g", 100 * kMillisecond);
  const int a = g.add_task(
      sw_task("a", kMillisecond, true, false));
  const int b = g.add_task(sw_task("b", kMillisecond, /*assert=*/false,
                                   false, 100 * kMillisecond));
  g.add_edge(a, b, 64);
  spec.graphs.push_back(std::move(g));

  FtTransformReport report;
  const Specification ft =
      add_fault_tolerance(spec, lib(), FtParams{}, &report);
  EXPECT_EQ(report.duplicate_compare_added, 1);
  // b gains a duplicate (with a's edge re-fanned) and a compare task.
  const TaskGraph& fg = ft.graphs[0];
  int dup = -1, cmp = -1;
  for (int t = 0; t < fg.task_count(); ++t) {
    if (fg.task(t).name == "b.dup") dup = t;
    if (fg.task(t).name == "b.cmp") cmp = t;
  }
  ASSERT_GE(dup, 0);
  ASSERT_GE(cmp, 0);
  // Duplicate receives the same input edge as b.
  bool dup_fed = false;
  for (const Edge& e : fg.edges())
    if (e.src == a && e.dst == dup) dup_fed = true;
  EXPECT_TRUE(dup_fed);
  // Both replicas feed the comparator.
  int cmp_inputs = 0;
  for (const Edge& e : fg.edges())
    if (e.dst == cmp) ++cmp_inputs;
  EXPECT_EQ(cmp_inputs, 2);
  EXPECT_NO_THROW(ft.validate(lib().pe_count()));
}

TEST(FtTransformTest, ErrorTransparencySharesChecks) {
  // Chain t0 -> t1 -> t2 where t0,t1 are error-transparent: only the sink
  // needs its own check.
  Specification spec;
  TaskGraph g("g", 100 * kMillisecond);
  int prev = -1;
  for (int i = 0; i < 3; ++i) {
    const int t = g.add_task(sw_task(
        "t" + std::to_string(i), kMillisecond, true, /*transparent=*/i < 2,
        i == 2 ? 100 * kMillisecond : kNoTime));
    if (prev >= 0) g.add_edge(prev, t, 64);
    prev = t;
  }
  spec.graphs.push_back(std::move(g));

  FtTransformReport report;
  const Specification ft =
      add_fault_tolerance(spec, lib(), FtParams{}, &report);
  EXPECT_EQ(report.checks_shared, 2);
  EXPECT_EQ(report.assertions_added, 1);
  EXPECT_EQ(ft.graphs[0].task_count(), 4);  // 3 original + 1 assertion
}

TEST(FtTransformTest, TransparencyBoundedByHopLimit) {
  // A long transparent chain: sharing only reaches max_transparency_hops
  // upstream of the checked sink, so interior tasks re-acquire checks.
  Specification spec;
  TaskGraph g("g", 100 * kMillisecond);
  int prev = -1;
  for (int i = 0; i < 6; ++i) {
    const int t = g.add_task(sw_task(
        "t" + std::to_string(i), kMillisecond, true, /*transparent=*/true,
        i == 5 ? 100 * kMillisecond : kNoTime));
    if (prev >= 0) g.add_edge(prev, t, 64);
    prev = t;
  }
  spec.graphs.push_back(std::move(g));

  FtParams params;
  params.max_transparency_hops = 2;
  FtTransformReport report;
  add_fault_tolerance(spec, lib(), params, &report);
  // Sharing happens, but not for the whole chain.
  EXPECT_GT(report.checks_shared, 0);
  EXPECT_LT(report.checks_shared, 5);
  EXPECT_GT(report.assertions_added, 1);
}

TEST(FtTransformTest, LowCoverageAssertionFallsBackToDuplication) {
  Specification spec;
  TaskGraph g("g", 100 * kMillisecond);
  g.add_task(sw_task("t", kMillisecond, /*assert=*/true, false,
                     100 * kMillisecond));
  spec.graphs.push_back(std::move(g));
  FtParams params;
  params.assertion_coverage = 0.5;   // below requirement
  params.required_coverage = 0.9;
  FtTransformReport report;
  add_fault_tolerance(spec, lib(), params, &report);
  EXPECT_EQ(report.assertions_added, 0);
  EXPECT_EQ(report.duplicate_compare_added, 1);
}

// --- dependability (§6) ---

TEST(DependabilityTest, UnavailabilityClosedFormNoSpares) {
  // One unit, fail rate lambda, repair mu: U = lambda / (lambda + mu).
  const double fit = 5000;  // 5e-6 / hour
  const double mttr = 2.0;
  const double lambda = fit * 1e-9;
  const double expected = lambda / (lambda + 1.0 / mttr);
  EXPECT_NEAR(module_unavailability(fit, mttr, 0), expected, 1e-12);
}

TEST(DependabilityTest, SparesImproveAvailabilityMonotonically) {
  double prev = module_unavailability(20'000, 2.0, 0);
  for (int s = 1; s <= 3; ++s) {
    const double u = module_unavailability(20'000, 2.0, s);
    EXPECT_LT(u, prev);
    prev = u;
  }
  EXPECT_DOUBLE_EQ(module_unavailability(0, 2.0, 0), 0);
}

TEST(DependabilityTest, DegenerateInputsBecomeTypedErrors) {
  // Corrupted FIT/MTTR values must surface as crusade::Error before any
  // Markov arithmetic runs — never as a NaN/inf unavailability that would
  // quietly poison a DependabilityReport's "meets requirements" verdict.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(module_unavailability(nan, 2.0, 0), Error);
  EXPECT_THROW(module_unavailability(inf, 2.0, 0), Error);
  EXPECT_THROW(module_unavailability(-1.0, 2.0, 0), Error);
  EXPECT_THROW(module_unavailability(-inf, 2.0, 0), Error);
  EXPECT_THROW(module_unavailability(5000, 0.0, 0), Error);
  EXPECT_THROW(module_unavailability(5000, -2.0, 0), Error);
  EXPECT_THROW(module_unavailability(5000, nan, 0), Error);
  EXPECT_THROW(module_unavailability(5000, inf, 0), Error);
  EXPECT_THROW(module_unavailability(5000, 2.0, -1), Error);
}

TEST(DependabilityTest, ExtremeFiniteInputsStayInUnitInterval) {
  // Huge-but-finite FIT rates overflow the unnormalized birth–death chain;
  // the limit of U as lambda/mu grows is 1, and the clamp must hold at the
  // spare cap too (spares only shrink U, never push it out of [0,1]).
  DependabilityParams params;
  for (const double fit : {1e300, 1e18, 7.2e9}) {
    for (int spares = 0; spares <= params.max_spares_per_module; ++spares) {
      const double u = module_unavailability(fit, 2.0, spares);
      EXPECT_TRUE(std::isfinite(u)) << "fit " << fit << " spares " << spares;
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, 1.0);
    }
  }
  // Tiny MTTR (near-instant repair) and denormal FIT are fine too.
  EXPECT_EQ(module_unavailability(0.0, 1e-300, 3), 0.0);
  const double u = module_unavailability(1e-300, 1e-12, 0);
  EXPECT_TRUE(std::isfinite(u) && u >= 0 && u <= 1);
}

TEST(DependabilityTest, NanRequirementRejectedBeforeSynthesis) {
  // A NaN per-graph requirement passes naive `u < 0 || u > 1` screens; the
  // validator's negated-range form must reject it (and ±inf, and arity
  // mismatches) with a typed Error.
  SpecGenerator gen(lib());
  SpecGenConfig cfg;
  cfg.total_tasks = 20;
  cfg.seed = 95;
  const Specification base = gen.generate(cfg);
  for (const double bad : {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(), -0.1,
                           1.5}) {
    Specification spec = base;
    spec.unavailability_requirement.assign(spec.graphs.size(), 1e-3);
    spec.unavailability_requirement.back() = bad;
    EXPECT_THROW(spec.validate(lib().pe_count()), Error) << bad;
  }
  Specification arity = base;
  arity.unavailability_requirement.assign(arity.graphs.size() + 1, 1e-3);
  EXPECT_THROW(arity.validate(lib().pe_count()), Error);
}

TEST(DependabilityTest, ProvisionSparesMeetsRequirement) {
  SpecGenerator gen(lib());
  SpecGenConfig cfg;
  cfg.total_tasks = 60;
  cfg.seed = 91;
  Specification spec = gen.generate(cfg);
  // Demanding availability so spares are actually needed.
  spec.unavailability_requirement.assign(spec.graphs.size(), 2e-6);

  CrusadeParams base;
  base.enable_reconfig = false;
  CrusadeResult r = Crusade(spec, lib(), base).run();
  const FlatSpec flat(spec);
  const DependabilityReport report = provision_spares(
      r.arch, flat, r.task_cluster, DependabilityParams{});
  EXPECT_TRUE(report.meets_requirements);
  EXPECT_GT(report.total_spare_cost, 0);  // 2e-6 needs standbys
  EXPECT_DOUBLE_EQ(r.arch.spares_cost, report.total_spare_cost);
  // Service modules partition the live PEs.
  int covered = 0;
  for (const ServiceModule& m : report.modules)
    covered += static_cast<int>(m.pes.size());
  EXPECT_EQ(covered, r.arch.live_pe_count());
}

TEST(DependabilityTest, LooseRequirementNeedsNoSpares) {
  SpecGenerator gen(lib());
  SpecGenConfig cfg;
  cfg.total_tasks = 40;
  cfg.seed = 92;
  Specification spec = gen.generate(cfg);
  spec.unavailability_requirement.assign(spec.graphs.size(), 0.5);
  CrusadeParams base;
  base.enable_reconfig = false;
  CrusadeResult r = Crusade(spec, lib(), base).run();
  const FlatSpec flat(spec);
  const DependabilityReport report = provision_spares(
      r.arch, flat, r.task_cluster, DependabilityParams{});
  EXPECT_TRUE(report.meets_requirements);
  EXPECT_DOUBLE_EQ(report.total_spare_cost, 0);
}

// --- driver ---

TEST(CrusadeFtTest, EndToEndMeetsAvailabilityAndDeadlines) {
  SpecGenerator gen(lib());
  SpecGenConfig cfg;
  cfg.total_tasks = 70;
  cfg.seed = 93;
  const Specification spec = gen.generate(cfg);
  CrusadeFtParams params;
  params.base.enable_reconfig = false;
  const CrusadeFtResult r = CrusadeFt(spec, lib(), params).run();
  EXPECT_GT(r.transform.tasks_after, r.transform.tasks_before);
  EXPECT_TRUE(r.dependability.meets_requirements);
  EXPECT_TRUE(r.synthesis.feasible);
  EXPECT_GT(r.total_cost, 0);
  // Default §7 requirements get attached when the spec carries none.
  EXPECT_FALSE(r.ft_spec.unavailability_requirement.empty());
}

TEST(CrusadeFtTest, FtCostsMoreThanPlainSynthesis) {
  SpecGenerator gen(lib());
  SpecGenConfig cfg;
  cfg.total_tasks = 70;
  cfg.seed = 94;
  const Specification spec = gen.generate(cfg);
  CrusadeParams plain;
  plain.enable_reconfig = false;
  const CrusadeResult base = Crusade(spec, lib(), plain).run();
  CrusadeFtParams params;
  params.base.enable_reconfig = false;
  const CrusadeFtResult ft = CrusadeFt(spec, lib(), params).run();
  EXPECT_GT(ft.total_cost, base.cost.total());
}

TEST(FtTransformTest, CheckDeadlineInheritsPipelinedSinkDeadline) {
  // A fast pipelined graph (sink deadline = 2 periods): the interior task's
  // check must be due by the sink deadline, not one bare period.
  Specification spec;
  TaskGraph g("g", 50 * kMicrosecond);
  Task interior = sw_task("mid", 5 * kMicrosecond, true, false);
  const int a = g.add_task(interior);
  Task sink = sw_task("out", 5 * kMicrosecond, true, false,
                      100 * kMicrosecond);  // pipelined: 2 periods
  const int b = g.add_task(sink);
  g.add_edge(a, b, 8);
  spec.graphs.push_back(std::move(g));

  const Specification ft = add_fault_tolerance(spec, lib(), FtParams{});
  bool found = false;
  for (const TaskGraph& fg : ft.graphs)
    for (int t = 0; t < fg.task_count(); ++t)
      if (fg.task(t).name == "mid.assert") {
        EXPECT_EQ(fg.task(t).deadline, 100 * kMicrosecond);
        found = true;
      }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace crusade
