// Unit tests for the text specification format (graph/spec_io.hpp).
#include <gtest/gtest.h>

#include <sstream>

#include "graph/spec_io.hpp"
#include "tgff/generator.hpp"

namespace crusade {
namespace {

const ResourceLibrary& lib() {
  static const ResourceLibrary l = telecom_1999();
  return l;
}

TEST(ParseTimeTest, UnitsAndFractions) {
  EXPECT_EQ(parse_time("80ns"), 80);
  EXPECT_EQ(parse_time("25us"), 25 * kMicrosecond);
  EXPECT_EQ(parse_time("1.5ms"), 1'500'000);
  EXPECT_EQ(parse_time("60s"), kMinute);
  EXPECT_EQ(parse_time("1min"), kMinute);
  EXPECT_THROW(parse_time("12parsecs"), Error);
  EXPECT_THROW(parse_time("fast"), Error);
}

TEST(ParseTimeTest, RejectsHostileLiterals) {
  // Negative, overflowing, NaN and trailing-garbage literals must all
  // surface as crusade::Error, never as a bogus TimeNs.
  EXPECT_THROW(parse_time("-3us"), Error);
  EXPECT_THROW(parse_time("-0.5ms"), Error);
  EXPECT_THROW(parse_time("999999999min"), Error);  // > int64 nanoseconds
  EXPECT_THROW(parse_time("1e308s"), Error);        // double overflow
  EXPECT_THROW(parse_time("nan"), Error);
  EXPECT_THROW(parse_time("nans"), Error);          // NaN with a real unit
  EXPECT_THROW(parse_time("5uss"), Error);          // trailing garbage
  EXPECT_THROW(parse_time("5 us"), Error);
  EXPECT_THROW(parse_time("5"), Error);             // unit required
  EXPECT_THROW(parse_time(""), Error);
  EXPECT_THROW(parse_time("0x"), Error);
  EXPECT_THROW(parse_time("%s"), Error);
  // The guard is a bound, not a blanket: large-but-representable is fine.
  EXPECT_EQ(parse_time("120min"), 120 * kMinute);
  EXPECT_EQ(parse_time("0ns"), 0);
}

TEST(ParseTimeTest, RoundTripsWithToString) {
  for (TimeNs t : std::vector<TimeNs>{80, 25 * kMicrosecond, 1'500'000,
                                      kSecond, kMinute, 10 * kMillisecond})
    EXPECT_EQ(parse_time(time_to_string(t)), t) << t;
}

constexpr const char* kSample = R"(
# A tiny two-graph system.
spec sample
boot_requirement 150ms

graph control period 10ms
task sense deadline 8ms mem 4096 2048 1024 exec MC68360=400us MC68040=250us
task act   deadline 10ms mem 8192 0 0 assertion 0 exec *=300us
edge sense act 64
exclude sense act

graph dsp period 100ms est 5ms
task filter hw 200 24 transparent 1 exec XC4025=2ms AT6005=3ms
task out deadline 90ms hw 50 10 exec XC4025=1ms AT6005=1.5ms
edge filter out 256

compatible control dsp
unavailability dsp 0.0001
)";

TEST(SpecIoTest, ParsesSample) {
  std::istringstream in(kSample);
  const Specification spec = read_specification(in, lib());
  EXPECT_EQ(spec.name, "sample");
  EXPECT_EQ(spec.boot_time_requirement, 150 * kMillisecond);
  ASSERT_EQ(spec.graphs.size(), 2u);

  const TaskGraph& control = spec.graphs[0];
  EXPECT_EQ(control.period(), 10 * kMillisecond);
  ASSERT_EQ(control.task_count(), 2);
  EXPECT_EQ(control.task(0).deadline, 8 * kMillisecond);
  EXPECT_EQ(control.task(0).exec[lib().find_pe("MC68360")],
            400 * kMicrosecond);
  EXPECT_EQ(control.task(0).exec[lib().find_pe("MC68060")], kNoTime);
  EXPECT_EQ(control.task(0).memory.program, 4096);
  EXPECT_FALSE(control.task(1).has_assertion);
  // exec *=300us touched every PE type.
  EXPECT_EQ(control.task(1).exec[lib().find_pe("XC4025")],
            300 * kMicrosecond);
  ASSERT_EQ(control.edge_count(), 1);
  EXPECT_EQ(control.edge(0).bytes, 64);
  EXPECT_FALSE(control.task(0).exclusions.empty());

  const TaskGraph& dsp = spec.graphs[1];
  EXPECT_EQ(dsp.est(), 5 * kMillisecond);
  EXPECT_EQ(dsp.task(0).pfus, 200);
  EXPECT_TRUE(dsp.task(0).error_transparent);

  ASSERT_TRUE(spec.compatibility.has_value());
  EXPECT_TRUE(spec.compatibility->compatible(0, 1));
  ASSERT_EQ(spec.unavailability_requirement.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.unavailability_requirement[1], 0.0001);
}

TEST(SpecIoTest, RoundTripsThroughWriter) {
  std::istringstream in(kSample);
  const Specification original = read_specification(in, lib());
  std::ostringstream out;
  write_specification(out, original, lib());
  std::istringstream back(out.str());
  const Specification reparsed = read_specification(back, lib());

  ASSERT_EQ(reparsed.graphs.size(), original.graphs.size());
  for (std::size_t g = 0; g < original.graphs.size(); ++g) {
    const TaskGraph& a = original.graphs[g];
    const TaskGraph& b = reparsed.graphs[g];
    ASSERT_EQ(a.task_count(), b.task_count());
    ASSERT_EQ(a.edge_count(), b.edge_count());
    EXPECT_EQ(a.period(), b.period());
    EXPECT_EQ(a.est(), b.est());
    for (int t = 0; t < a.task_count(); ++t) {
      EXPECT_EQ(a.task(t).exec, b.task(t).exec);
      EXPECT_EQ(a.task(t).deadline, b.task(t).deadline);
      EXPECT_EQ(a.task(t).pfus, b.task(t).pfus);
      EXPECT_EQ(a.task(t).has_assertion, b.task(t).has_assertion);
    }
  }
  EXPECT_EQ(reparsed.boot_time_requirement, original.boot_time_requirement);
  EXPECT_TRUE(reparsed.compatibility->compatible(0, 1));
}

TEST(SpecIoTest, GeneratedSpecificationRoundTrips) {
  SpecGenerator gen(lib());
  SpecGenConfig cfg;
  cfg.total_tasks = 60;
  cfg.seed = 7;
  const Specification original = gen.generate(cfg);
  std::ostringstream out;
  write_specification(out, original, lib());
  std::istringstream back(out.str());
  const Specification reparsed = read_specification(back, lib());
  EXPECT_EQ(reparsed.total_tasks(), original.total_tasks());
  EXPECT_EQ(reparsed.total_edges(), original.total_edges());
  EXPECT_NO_THROW(reparsed.validate(lib().pe_count()));
}

TEST(SpecIoTest, ErrorsCarryLineNumbers) {
  auto expect_error = [&](const std::string& text,
                          const std::string& fragment) {
    std::istringstream in(text);
    try {
      read_specification(in, lib());
      FAIL() << "expected parse error for: " << text;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expect_error("task t exec *=1ms\n", "before any 'graph'");
  expect_error("graph g period 1ms\nbogus directive\n", "unknown directive");
  expect_error("graph g period 1ms\ngraph g period 2ms\n", "duplicate graph");
  expect_error("graph g period 1ms\ntask t deadline 1ms\n", "no exec vector");
  expect_error("graph g period 1ms\ntask t exec nosuchpe=1ms\n",
               "unknown PE type");
  expect_error("graph g period 1ms\ntask t exec *=1ms\nedge t missing 8\n",
               "unknown task");
}

TEST(SpecIoTest, MalformedSpecsReportExactLines) {
  // Table-driven: every malformed input must throw crusade::Error whose
  // message carries the 1-based line number of the offending directive —
  // fault injection (tests/inject_test.cpp) relies on this contract.
  struct Case {
    const char* text;
    int line;              // expected "spec line <N>"
    const char* fragment;  // expected message substring
  };
  const Case cases[] = {
      {"graph g period 10ms\n"
       "task t deadline -3us exec *=1ms\n",
       2, "negative time"},
      {"graph g period 10ms\n"
       "task t deadline 999999999min exec *=1ms\n",
       2, "out of range"},
      {"graph g period 10ms\n"
       "task t deadline 5uss exec *=1ms\n",
       2, "bad time unit"},
      {"graph g period 10ms\n"
       "\n"
       "task t exec *=bogus\n",
       3, "bad time literal"},
      {"graph g period 10ms\n"
       "task t mem 1 2 exec *=1ms\n",  // mem eats 'exec': arity error
       2, "mem"},
      {"graph g period 10ms\n"
       "task t mem -1 0 0 exec *=1ms\n",
       2, "negative memory"},
      {"graph g period 10ms\n"
       "task t hw -4 2 exec *=1ms\n",
       2, "negative hardware"},
      {"graph g period 10ms\n"
       "task t exec *=1ms\n"
       "task t exec *=2ms\n",
       3, "duplicate task"},
      {"graph g period 10ms\n"
       "graph h period 5ms\n"
       "graph g period 1ms\n",
       3, "duplicate graph"},
      {"graph g period 10ms\n"
       "task t exec *=1ms\n"
       "edge t ghost 64\n",
       3, "unknown task"},
      {"graph g period 10ms\n"
       "task t exec *=1ms\n"
       "edge t t\n",
       3, "want: edge"},
      {"graph g period 10ms\n"
       "task a exec *=1ms\n"
       "task b exec *=1ms\n"
       "edge a b -64\n",
       4, "negative bytes"},
      {"graph g period 10ms\n"
       "task t exec *=1ms\n"
       "exclude t t\n",
       3, "cannot exclude itself"},
      {"graph g period 10ms\n"
       "task t exec *=1ms\n"
       "exclude t ghost\n",
       3, "unknown task"},
      {"graph g period 10ms\n"
       "task t exec *=1ms\n"
       "compatible g g\n",
       3, "compatible with itself"},
      {"graph g period 10ms\n"
       "task t exec *=1ms\n"
       "compatible g ghost\n",
       3, "unknown graph"},
      {"graph g period 10ms\n"
       "task t exec *=1ms\n"
       "unavailability g 1.5\n",
       3, "outside [0,1]"},
      {"boot_requirement\n", 1, "needs a time"},
      {"graph g period 0x\n", 1, "bad time unit"},
  };
  for (const Case& c : cases) {
    std::istringstream in(c.text);
    try {
      read_specification(in, lib());
      FAIL() << "expected parse error for: " << c.text;
    } catch (const Error& e) {
      const std::string msg = e.what();
      const std::string stamp = "spec line " + std::to_string(c.line) + ":";
      EXPECT_NE(msg.find(stamp), std::string::npos)
          << "missing '" << stamp << "' in: " << msg << "\nspec:\n" << c.text;
      EXPECT_NE(msg.find(c.fragment), std::string::npos)
          << "missing '" << c.fragment << "' in: " << msg;
    }
  }
}

TEST(SpecIoTest, MissingFileThrows) {
  EXPECT_THROW(read_specification_file("/nonexistent/x.spec", lib()), Error);
}

}  // namespace
}  // namespace crusade
