// Unit tests for the text specification format (graph/spec_io.hpp).
#include <gtest/gtest.h>

#include <sstream>

#include "graph/spec_io.hpp"
#include "tgff/generator.hpp"

namespace crusade {
namespace {

const ResourceLibrary& lib() {
  static const ResourceLibrary l = telecom_1999();
  return l;
}

TEST(ParseTimeTest, UnitsAndFractions) {
  EXPECT_EQ(parse_time("80ns"), 80);
  EXPECT_EQ(parse_time("25us"), 25 * kMicrosecond);
  EXPECT_EQ(parse_time("1.5ms"), 1'500'000);
  EXPECT_EQ(parse_time("60s"), kMinute);
  EXPECT_EQ(parse_time("1min"), kMinute);
  EXPECT_THROW(parse_time("12parsecs"), Error);
  EXPECT_THROW(parse_time("fast"), Error);
}

TEST(ParseTimeTest, RoundTripsWithToString) {
  for (TimeNs t : std::vector<TimeNs>{80, 25 * kMicrosecond, 1'500'000,
                                      kSecond, kMinute, 10 * kMillisecond})
    EXPECT_EQ(parse_time(time_to_string(t)), t) << t;
}

constexpr const char* kSample = R"(
# A tiny two-graph system.
spec sample
boot_requirement 150ms

graph control period 10ms
task sense deadline 8ms mem 4096 2048 1024 exec MC68360=400us MC68040=250us
task act   deadline 10ms mem 8192 0 0 assertion 0 exec *=300us
edge sense act 64
exclude sense act

graph dsp period 100ms est 5ms
task filter hw 200 24 transparent 1 exec XC4025=2ms AT6005=3ms
task out deadline 90ms hw 50 10 exec XC4025=1ms AT6005=1.5ms
edge filter out 256

compatible control dsp
unavailability dsp 0.0001
)";

TEST(SpecIoTest, ParsesSample) {
  std::istringstream in(kSample);
  const Specification spec = read_specification(in, lib());
  EXPECT_EQ(spec.name, "sample");
  EXPECT_EQ(spec.boot_time_requirement, 150 * kMillisecond);
  ASSERT_EQ(spec.graphs.size(), 2u);

  const TaskGraph& control = spec.graphs[0];
  EXPECT_EQ(control.period(), 10 * kMillisecond);
  ASSERT_EQ(control.task_count(), 2);
  EXPECT_EQ(control.task(0).deadline, 8 * kMillisecond);
  EXPECT_EQ(control.task(0).exec[lib().find_pe("MC68360")],
            400 * kMicrosecond);
  EXPECT_EQ(control.task(0).exec[lib().find_pe("MC68060")], kNoTime);
  EXPECT_EQ(control.task(0).memory.program, 4096);
  EXPECT_FALSE(control.task(1).has_assertion);
  // exec *=300us touched every PE type.
  EXPECT_EQ(control.task(1).exec[lib().find_pe("XC4025")],
            300 * kMicrosecond);
  ASSERT_EQ(control.edge_count(), 1);
  EXPECT_EQ(control.edge(0).bytes, 64);
  EXPECT_FALSE(control.task(0).exclusions.empty());

  const TaskGraph& dsp = spec.graphs[1];
  EXPECT_EQ(dsp.est(), 5 * kMillisecond);
  EXPECT_EQ(dsp.task(0).pfus, 200);
  EXPECT_TRUE(dsp.task(0).error_transparent);

  ASSERT_TRUE(spec.compatibility.has_value());
  EXPECT_TRUE(spec.compatibility->compatible(0, 1));
  ASSERT_EQ(spec.unavailability_requirement.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.unavailability_requirement[1], 0.0001);
}

TEST(SpecIoTest, RoundTripsThroughWriter) {
  std::istringstream in(kSample);
  const Specification original = read_specification(in, lib());
  std::ostringstream out;
  write_specification(out, original, lib());
  std::istringstream back(out.str());
  const Specification reparsed = read_specification(back, lib());

  ASSERT_EQ(reparsed.graphs.size(), original.graphs.size());
  for (std::size_t g = 0; g < original.graphs.size(); ++g) {
    const TaskGraph& a = original.graphs[g];
    const TaskGraph& b = reparsed.graphs[g];
    ASSERT_EQ(a.task_count(), b.task_count());
    ASSERT_EQ(a.edge_count(), b.edge_count());
    EXPECT_EQ(a.period(), b.period());
    EXPECT_EQ(a.est(), b.est());
    for (int t = 0; t < a.task_count(); ++t) {
      EXPECT_EQ(a.task(t).exec, b.task(t).exec);
      EXPECT_EQ(a.task(t).deadline, b.task(t).deadline);
      EXPECT_EQ(a.task(t).pfus, b.task(t).pfus);
      EXPECT_EQ(a.task(t).has_assertion, b.task(t).has_assertion);
    }
  }
  EXPECT_EQ(reparsed.boot_time_requirement, original.boot_time_requirement);
  EXPECT_TRUE(reparsed.compatibility->compatible(0, 1));
}

TEST(SpecIoTest, GeneratedSpecificationRoundTrips) {
  SpecGenerator gen(lib());
  SpecGenConfig cfg;
  cfg.total_tasks = 60;
  cfg.seed = 7;
  const Specification original = gen.generate(cfg);
  std::ostringstream out;
  write_specification(out, original, lib());
  std::istringstream back(out.str());
  const Specification reparsed = read_specification(back, lib());
  EXPECT_EQ(reparsed.total_tasks(), original.total_tasks());
  EXPECT_EQ(reparsed.total_edges(), original.total_edges());
  EXPECT_NO_THROW(reparsed.validate(lib().pe_count()));
}

TEST(SpecIoTest, ErrorsCarryLineNumbers) {
  auto expect_error = [&](const std::string& text,
                          const std::string& fragment) {
    std::istringstream in(text);
    try {
      read_specification(in, lib());
      FAIL() << "expected parse error for: " << text;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expect_error("task t exec *=1ms\n", "before any 'graph'");
  expect_error("graph g period 1ms\nbogus directive\n", "unknown directive");
  expect_error("graph g period 1ms\ngraph g period 2ms\n", "duplicate graph");
  expect_error("graph g period 1ms\ntask t deadline 1ms\n", "no exec vector");
  expect_error("graph g period 1ms\ntask t exec nosuchpe=1ms\n",
               "unknown PE type");
  expect_error("graph g period 1ms\ntask t exec *=1ms\nedge t missing 8\n",
               "unknown task");
}

TEST(SpecIoTest, MissingFileThrows) {
  EXPECT_THROW(read_specification_file("/nonexistent/x.spec", lib()), Error);
}

}  // namespace
}  // namespace crusade
