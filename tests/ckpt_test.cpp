// Tests for the crash-safe checkpoint/resume subsystem (src/ckpt, DESIGN.md
// §11): atomic file writes, deterministic binary serialization, checkpoint
// framing (magic/version/CRC), loud failure on every corruption mode,
// search determinism, resume equivalence (bit-identical final architecture
// from every on-trajectory checkpoint), and anytime-stop semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/serialize.hpp"
#include "core/crusade.hpp"
#include "example_specs.hpp"
#include "obs/obs.hpp"
#include "util/atomic_file.hpp"
#include "util/error.hpp"
#include "util/io_faults.hpp"
#include "util/run_control.hpp"

namespace crusade {
namespace {

const ResourceLibrary& lib() {
  static const ResourceLibrary l = telecom_1999();
  return l;
}

/// Unique-enough temp path under the build's working directory; removed by
/// the TempFile destructor so failed runs do not accumulate litter.
struct TempFile {
  explicit TempFile(const std::string& stem) {
    path = stem + "." + std::to_string(::getpid()) + ".tmp-test";
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

std::string arch_bytes(const Architecture& arch) {
  ckpt::BinWriter w;
  ckpt::write_architecture(w, arch);
  return w.bytes();
}

// --- atomic file writes (satellite 1) ------------------------------------

TEST(AtomicFileTest, WritesExactContents) {
  TempFile f("ckpt_test_atomic");
  atomic_write_file(f.path, "hello checkpoint\n");
  EXPECT_EQ(read_file(f.path), "hello checkpoint\n");
}

TEST(AtomicFileTest, OverwriteReplacesWhole) {
  TempFile f("ckpt_test_overwrite");
  atomic_write_file(f.path, std::string(4096, 'x'));
  atomic_write_file(f.path, "short");
  // Rename semantics: the new file fully replaces the old, no tail remains.
  EXPECT_EQ(read_file(f.path), "short");
}

TEST(AtomicFileTest, BinaryContentsSurvive) {
  TempFile f("ckpt_test_binary");
  std::string blob;
  for (int i = 0; i < 512; ++i) blob.push_back(static_cast<char>(i & 0xff));
  atomic_write_file(f.path, blob);
  EXPECT_EQ(read_file(f.path), blob);
}

TEST(AtomicFileTest, ReadMissingFileThrows) {
  EXPECT_THROW(read_file("ckpt_test_no_such_file.bin"), Error);
}

TEST(AtomicFileTest, WriteToBadDirectoryThrows) {
  EXPECT_THROW(
      atomic_write_file("ckpt_test_no_such_dir/sub/file.bin", "data"), Error);
}

// --- serialization primitives ---------------------------------------------

TEST(SerializeTest, PrimitiveRoundTrip) {
  ckpt::BinWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.i32(-42);
  w.i64(-1234567890123456789ll);
  w.f64(3.141592653589793);
  w.f64(-0.0);
  w.str("checkpoint");
  w.str("");
  w.vec_i32({1, -2, 3});
  w.vec_i64({-9, 0, 9000000000ll});
  w.vec_u8({'\0', 'a', '\xff'});

  ckpt::BinReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123456789ll);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));  // bit-pattern, not value, round-trip
  EXPECT_EQ(r.str(), "checkpoint");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.vec_i32(), (std::vector<int>{1, -2, 3}));
  EXPECT_EQ(r.vec_i64(), (std::vector<std::int64_t>{-9, 0, 9000000000ll}));
  EXPECT_EQ(r.vec_u8(), (std::vector<char>{'\0', 'a', '\xff'}));
  EXPECT_TRUE(r.at_end());
}

TEST(SerializeTest, DeterministicBytes) {
  ckpt::BinWriter a, b;
  for (ckpt::BinWriter* w : {&a, &b}) {
    w->i64(77);
    w->str("same");
    w->f64(1.5);
  }
  EXPECT_EQ(a.bytes(), b.bytes());
}

TEST(SerializeTest, ReaderOverrunThrows) {
  ckpt::BinWriter w;
  w.u32(7);
  ckpt::BinReader r(w.bytes());
  EXPECT_THROW(r.u64(), Error);  // only 4 bytes available
}

TEST(SerializeTest, TruncatedStringThrows) {
  ckpt::BinWriter w;
  w.str("abcdef");
  const std::string cut = w.bytes().substr(0, w.bytes().size() - 2);
  ckpt::BinReader r(cut);
  EXPECT_THROW(r.str(), Error);
}

TEST(SerializeTest, HugeLengthPrefixThrows) {
  // A corrupted length prefix must not drive a giant allocation or an
  // overrun: the bounds check fires first.
  ckpt::BinWriter w;
  w.u64(0xffffffffffffull);  // claims ~280 TB of payload
  ckpt::BinReader r(w.bytes());
  EXPECT_THROW(r.str(), Error);
}

TEST(SerializeTest, Crc32KnownVector) {
  // The standard IEEE 802.3 check value.
  EXPECT_EQ(ckpt::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(ckpt::crc32(""), 0u);
}

TEST(SerializeTest, Fnv1aKnownVectors) {
  EXPECT_EQ(ckpt::fnv1a(""), 0xcbf29ce484222325ull);
  EXPECT_NE(ckpt::fnv1a("a"), ckpt::fnv1a("b"));
}

// --- architecture / checkpoint round-trips --------------------------------

CrusadeResult run_once(const Specification& spec, CrusadeParams params = {}) {
  return Crusade(spec, lib(), params).run();
}

TEST(CheckpointTest, ArchitectureRoundTrip) {
  const CrusadeResult r = run_once(base_station_spec(lib()));
  ASSERT_FALSE(r.arch.pes.empty());
  const std::string bytes = arch_bytes(r.arch);
  ckpt::BinReader reader(bytes);
  const Architecture back = ckpt::read_architecture(reader, lib());
  EXPECT_TRUE(reader.at_end());
  EXPECT_EQ(arch_bytes(back), bytes);
}

ckpt::Checkpoint sample_checkpoint() {
  const CrusadeResult r = run_once(quickstart_spec(lib()));
  ckpt::Checkpoint c;
  c.stage = ckpt::Stage::Merge;
  c.spec_hash = 0x1122334455667788ull;
  c.arch = r.arch;
  c.placed.assign(7, 1);
  c.sched_evals = 321;
  c.clusters_with_misses = 2;
  c.committed_tardiness = 12345;
  c.committed_estimate = -6789;
  c.committed_failures = 3;
  c.merge_report = r.merge_report;
  c.stats = r.stats;
  return c;
}

TEST(CheckpointTest, EncodeDecodeRoundTrip) {
  const ckpt::Checkpoint c = sample_checkpoint();
  const std::string bytes = ckpt::encode_checkpoint(c);
  const ckpt::Checkpoint back = ckpt::decode_checkpoint(bytes, lib());
  EXPECT_EQ(back.stage, c.stage);
  EXPECT_EQ(back.spec_hash, c.spec_hash);
  EXPECT_EQ(arch_bytes(back.arch), arch_bytes(c.arch));
  EXPECT_EQ(back.placed, c.placed);
  EXPECT_EQ(back.sched_evals, c.sched_evals);
  EXPECT_EQ(back.clusters_with_misses, c.clusters_with_misses);
  EXPECT_EQ(back.committed_tardiness, c.committed_tardiness);
  EXPECT_EQ(back.committed_estimate, c.committed_estimate);
  EXPECT_EQ(back.committed_failures, c.committed_failures);
  EXPECT_EQ(back.stats.sched_evals, c.stats.sched_evals);
  EXPECT_EQ(back.stats.repair_moves, c.stats.repair_moves);
  EXPECT_DOUBLE_EQ(back.stats.allocation_seconds, c.stats.allocation_seconds);
  EXPECT_EQ(back.merge_report.passes, c.merge_report.passes);
  EXPECT_EQ(back.merge_report.merges_accepted, c.merge_report.merges_accepted);
  // Re-encoding the decoded checkpoint reproduces the exact bytes.
  EXPECT_EQ(ckpt::encode_checkpoint(back), bytes);
}

TEST(CheckpointTest, SaveLoadRoundTrip) {
  const ckpt::Checkpoint c = sample_checkpoint();
  TempFile f("ckpt_test_saveload");
  ckpt::save_checkpoint(f.path, c);
  const ckpt::Checkpoint back = ckpt::load_checkpoint(f.path, lib());
  EXPECT_EQ(ckpt::encode_checkpoint(back), ckpt::encode_checkpoint(c));
}

// Every corruption mode fails with a typed Error — never a crash, never a
// silently restarted search.
TEST(CheckpointTest, CorruptionFailsLoudly) {
  const std::string good = ckpt::encode_checkpoint(sample_checkpoint());

  EXPECT_THROW(ckpt::decode_checkpoint("", lib()), Error);

  // Truncations at every interesting boundary, plus mid-payload.
  for (std::size_t cut : {std::size_t{2}, std::size_t{10}, std::size_t{19},
                          good.size() - 1, good.size() / 2}) {
    EXPECT_THROW(ckpt::decode_checkpoint(good.substr(0, cut), lib()), Error)
        << "cut at " << cut;
  }

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_THROW(ckpt::decode_checkpoint(bad_magic, lib()), Error);

  std::string bad_version = good;
  bad_version[4] = static_cast<char>(0x7f);  // unsupported version
  EXPECT_THROW(ckpt::decode_checkpoint(bad_version, lib()), Error);

  // A flipped payload byte is caught by the CRC.
  std::string flipped = good;
  flipped[good.size() - 5] ^= 0x01;
  EXPECT_THROW(ckpt::decode_checkpoint(flipped, lib()), Error);

  std::string trailing = good + "garbage";
  EXPECT_THROW(ckpt::decode_checkpoint(trailing, lib()), Error);
}

TEST(CheckpointTest, LoadMissingFileThrows) {
  EXPECT_THROW(ckpt::load_checkpoint("ckpt_test_missing.ckpt", lib()), Error);
}

TEST(CheckpointTest, WrongSpecHashRejected) {
  ckpt::Checkpoint c = sample_checkpoint();
  EXPECT_NO_THROW(ckpt::check_spec_hash(c, c.spec_hash));
  EXPECT_THROW(ckpt::check_spec_hash(c, c.spec_hash + 1), Error);
}

TEST(CheckpointTest, FingerprintSeparatesSpecsAndParams) {
  const Specification a = quickstart_spec(lib());
  const Specification b = base_station_spec(lib());
  CrusadeParams params;
  const std::uint64_t fa = Crusade::fingerprint(a, lib(), params);
  EXPECT_EQ(fa, Crusade::fingerprint(a, lib(), params));  // stable
  EXPECT_NE(fa, Crusade::fingerprint(b, lib(), params));  // spec-sensitive
  CrusadeParams tweaked;
  tweaked.enable_reconfig = false;
  EXPECT_NE(fa, Crusade::fingerprint(a, lib(), tweaked));  // param-sensitive
  CrusadeParams budget;
  budget.alloc.max_iterations = 17;
  EXPECT_NE(fa, Crusade::fingerprint(a, lib(), budget));
}

// --- determinism + resume equivalence (the tentpole's core claim) ---------

TEST(CheckpointTest, SynthesisIsDeterministic) {
  for (const Specification& spec :
       {quickstart_spec(lib()), base_station_spec(lib())}) {
    const CrusadeResult a = run_once(spec);
    const CrusadeResult b = run_once(spec);
    EXPECT_EQ(arch_bytes(a.arch), arch_bytes(b.arch)) << spec.name;
    EXPECT_EQ(a.stats.sched_evals, b.stats.sched_evals) << spec.name;
    EXPECT_EQ(a.stats.repair_moves, b.stats.repair_moves) << spec.name;
    EXPECT_EQ(a.cost.total(), b.cost.total()) << spec.name;
    EXPECT_EQ(a.feasible, b.feasible) << spec.name;
  }
}

TEST(CheckpointTest, ResumeFromEveryCheckpointIsBitIdentical) {
  const Specification spec = base_station_spec(lib());

  CrusadeParams record;
  record.checkpoint.every_evals = 1;  // checkpoint at every commit boundary
  std::vector<ckpt::Checkpoint> trail;
  record.checkpoint.on_write = [&](const ckpt::Checkpoint& c) {
    trail.push_back(c);
  };
  const CrusadeResult baseline = Crusade(spec, lib(), record).run();
  ASSERT_FALSE(trail.empty());

  const std::uint64_t hash = Crusade::fingerprint(spec, lib(), CrusadeParams{});
  const std::string want_arch = arch_bytes(baseline.arch);

  bool saw_alloc = false, saw_merge_done = false;
  for (std::size_t i = 0; i < trail.size(); ++i) {
    const ckpt::Checkpoint& c = trail[i];
    EXPECT_EQ(c.spec_hash, hash);
    saw_alloc |= c.stage == ckpt::Stage::Allocation;
    saw_merge_done |= c.stage == ckpt::Stage::MergeDone;

    // Round-trip through the file format, exactly as the CLI does.
    const ckpt::Checkpoint loaded =
        ckpt::decode_checkpoint(ckpt::encode_checkpoint(c), lib());
    CrusadeParams resume;
    resume.resume = &loaded;
    const CrusadeResult r = Crusade(spec, lib(), resume).run();
    EXPECT_TRUE(r.resumed);
    EXPECT_EQ(arch_bytes(r.arch), want_arch)
        << "checkpoint " << i << " stage " << ckpt::to_string(c.stage);
    EXPECT_EQ(r.stats.sched_evals, baseline.stats.sched_evals) << i;
    EXPECT_EQ(r.stats.repair_moves, baseline.stats.repair_moves) << i;
    EXPECT_EQ(r.merge_report.merges_accepted,
              baseline.merge_report.merges_accepted)
        << i;
    EXPECT_EQ(r.cost.total(), baseline.cost.total()) << i;
    EXPECT_EQ(r.feasible, baseline.feasible) << i;
  }
  EXPECT_TRUE(saw_alloc);       // allocation-stage checkpoints were taken
  EXPECT_TRUE(saw_merge_done);  // and the final merge boundary
}

TEST(CheckpointTest, ResumeWithWrongSpecThrows) {
  const Specification spec = quickstart_spec(lib());
  CrusadeParams record;
  std::vector<ckpt::Checkpoint> trail;
  record.checkpoint.every_evals = 1;
  record.checkpoint.on_write = [&](const ckpt::Checkpoint& c) {
    trail.push_back(c);
  };
  (void)Crusade(spec, lib(), record).run();
  ASSERT_FALSE(trail.empty());

  const Specification other = base_station_spec(lib());
  CrusadeParams resume;
  resume.resume = &trail.front();
  EXPECT_THROW(Crusade(other, lib(), resume).run(), Error);
}

// --- peek_checkpoint (the daemon's cheap spool integrity probe) ------------

TEST(CheckpointTest, PeekMatchesSavedHeaderWithoutLibrary) {
  const Specification spec = quickstart_spec(lib());
  CrusadeParams record;
  std::vector<ckpt::Checkpoint> trail;
  record.checkpoint.every_evals = 1;
  record.checkpoint.on_write = [&](const ckpt::Checkpoint& c) {
    trail.push_back(c);
  };
  (void)Crusade(spec, lib(), record).run();
  ASSERT_FALSE(trail.empty());

  TempFile f("ckpt_test_peek");
  ckpt::save_checkpoint(f.path, trail.back());
  const ckpt::CheckpointInfo info = ckpt::peek_checkpoint(f.path);
  EXPECT_EQ(info.version, ckpt::kCheckpointVersion);
  EXPECT_EQ(info.stage, trail.back().stage);
  EXPECT_EQ(info.spec_hash, trail.back().spec_hash);
  EXPECT_GT(info.payload_bytes, 0u);
}

TEST(CheckpointTest, PeekFailsLoudlyOnEveryCorruptionMode) {
  const Specification spec = quickstart_spec(lib());
  CrusadeParams record;
  std::vector<ckpt::Checkpoint> trail;
  record.checkpoint.every_evals = 1;
  record.checkpoint.on_write = [&](const ckpt::Checkpoint& c) {
    trail.push_back(c);
  };
  (void)Crusade(spec, lib(), record).run();
  ASSERT_FALSE(trail.empty());
  const std::string good = ckpt::encode_checkpoint(trail.back());

  TempFile f("ckpt_test_peek_corrupt");
  EXPECT_THROW(ckpt::peek_checkpoint(f.path), Error);  // missing file

  atomic_write_file(f.path, good.substr(0, 10));  // truncated header
  EXPECT_THROW(ckpt::peek_checkpoint(f.path), Error);

  atomic_write_file(f.path, good.substr(0, good.size() - 1));  // short payload
  EXPECT_THROW(ckpt::peek_checkpoint(f.path), Error);

  std::string flipped = good;
  flipped[good.size() / 2] ^= 0x40;  // payload bit flip -> CRC mismatch
  atomic_write_file(f.path, flipped);
  EXPECT_THROW(ckpt::peek_checkpoint(f.path), Error);

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  atomic_write_file(f.path, bad_magic);
  EXPECT_THROW(ckpt::peek_checkpoint(f.path), Error);

  // The pristine bytes still peek (the corruption tests above did not pass
  // by accident).
  atomic_write_file(f.path, good);
  EXPECT_EQ(ckpt::peek_checkpoint(f.path).spec_hash, trail.back().spec_hash);
}

// --- anytime semantics ----------------------------------------------------

TEST(AnytimeTest, PreTriggeredStopStillReturnsCompleteResult) {
  RunController control;
  control.request_stop();  // fires before the first budget poll
  CrusadeParams params;
  params.control = &control;
  const CrusadeResult r = run_once(base_station_spec(lib()), params);

  EXPECT_TRUE(r.stopped);
  EXPECT_TRUE(r.diagnosis.deadline_stopped);
  EXPECT_FALSE(r.diagnosis.empty());
  // The anytime contract: never an empty or schedule-less result.
  EXPECT_FALSE(r.arch.pes.empty());
  EXPECT_FALSE(r.schedule.timelines.empty());
  EXPECT_GT(r.cost.total(), 0);
}

TEST(AnytimeTest, ExpiredDeadlineBehavesLikeStop) {
  RunController control;
  control.set_deadline_ms(1);
  // Busy-wait past the deadline so it has expired before synthesis starts.
  while (!control.deadline_expired()) {
  }
  CrusadeParams params;
  params.control = &control;
  const CrusadeResult r = run_once(base_station_spec(lib()), params);
  EXPECT_TRUE(r.stopped);
  EXPECT_FALSE(r.arch.pes.empty());
}

TEST(CheckpointTest, InjectedEnospcDuringCheckpointsNeverKillsTheRun) {
  // Arm the environment-fault seam so every disk checkpoint write fails
  // with ENOSPC.  The driver must latch disk checkpointing off after the
  // first failure (counting crusade.ckpt_write_failed), keep feeding the
  // in-process on_write observer, and finish bit-identical to a fault-free
  // run: a full disk degrades durability, never correctness.
  const Specification spec = base_station_spec(lib());

  CrusadeParams clean;
  clean.checkpoint.every_evals = 1;
  const CrusadeResult want = Crusade(spec, lib(), clean).run();

  TempFile ckpt_path("ckpt_chaos");
  const bool obs_was_enabled = obs::enabled();
  obs::set_enabled(true);
  obs::reset();
  iofault::Plan plan;
  plan.seed = 77;
  plan.rate = 1.0;
  plan.kinds = 1u << static_cast<unsigned>(iofault::Kind::Enospc);
  iofault::arm(plan);

  CrusadeParams faulty;
  faulty.checkpoint.path = ckpt_path.path;
  faulty.checkpoint.every_evals = 1;
  int observed = 0;
  faulty.checkpoint.on_write = [&](const ckpt::Checkpoint&) { ++observed; };
  const CrusadeResult got = Crusade(spec, lib(), faulty).run();

  iofault::disarm();
  const auto injected = iofault::counters();
  iofault::reset_counters();
  const std::int64_t failed = obs::counter_value("crusade.ckpt_write_failed");
  obs::reset();
  obs::set_enabled(obs_was_enabled);

  // The faults really fired, exactly one write failure was latched, and
  // the observer kept seeing every policy-scheduled checkpoint.
  EXPECT_GT(injected.total, 0u);
  EXPECT_EQ(failed, 1);
  EXPECT_GT(observed, 0);
  // No checkpoint file survived (nothing partial, nothing stale) ...
  EXPECT_THROW(read_file(ckpt_path.path), Error);
  // ... and the search was untouched by the disk's misbehaviour.
  EXPECT_EQ(arch_bytes(got.arch), arch_bytes(want.arch));
  EXPECT_EQ(got.stats.sched_evals, want.stats.sched_evals);
  EXPECT_EQ(got.cost.total(), want.cost.total());
}

TEST(AnytimeTest, UntriggeredControlChangesNothing) {
  RunController control;  // armed with nothing: never fires
  CrusadeParams params;
  params.control = &control;
  const CrusadeResult with = run_once(quickstart_spec(lib()), params);
  const CrusadeResult without = run_once(quickstart_spec(lib()));
  EXPECT_FALSE(with.stopped);
  EXPECT_EQ(arch_bytes(with.arch), arch_bytes(without.arch));
  EXPECT_EQ(with.stats.sched_evals, without.stats.sched_evals);
}

TEST(AnytimeTest, StoppedRunsDoNotCheckpointWrapUpStates) {
  // Wrap-up states after the control fires are off the uninterrupted
  // trajectory, so the policy must not record them (resume equivalence).
  const Specification spec = base_station_spec(lib());

  CrusadeParams clean;
  clean.checkpoint.every_evals = 1;
  std::vector<ckpt::Checkpoint> clean_trail;
  clean.checkpoint.on_write = [&](const ckpt::Checkpoint& c) {
    clean_trail.push_back(c);
  };
  const CrusadeResult baseline = Crusade(spec, lib(), clean).run();

  RunController control;
  control.request_stop();
  CrusadeParams stopped;
  stopped.control = &control;
  stopped.checkpoint.every_evals = 1;
  std::vector<ckpt::Checkpoint> stopped_trail;
  stopped.checkpoint.on_write = [&](const ckpt::Checkpoint& c) {
    stopped_trail.push_back(c);
  };
  (void)Crusade(spec, lib(), stopped).run();

  // Every checkpoint a stopped run does write must also be a state the
  // clean run passed through (prefix property on the committed arch).
  ASSERT_LE(stopped_trail.size(), clean_trail.size());
  for (std::size_t i = 0; i < stopped_trail.size(); ++i) {
    EXPECT_EQ(arch_bytes(stopped_trail[i].arch),
              arch_bytes(clean_trail[i].arch))
        << i;
  }
  (void)baseline;
}

}  // namespace
}  // namespace crusade
