// Tests for the crusaded synthesis service (src/serve, DESIGN.md §13):
// protocol framing, priority queue ordering, admission control, deadline
// truncation to best-so-far, supervised crash retry with checkpoint resume,
// watchdog escalation, the crash-budget failed-honest path, result-cache
// bit-identity, spool-backed restart recovery, cancellation of queued and
// running jobs, daemon+client socket round-trips, the 100-job mixed
// crash campaign (zero lost, zero duplicated, every job terminal with an
// honest outcome), and the chaos surface from DESIGN.md §16: worker
// resource governance, idempotency nonces, client timeout bounds, torn
// spool quarantine, disk budget, cost-aware cache eviction, and the
// 210-scenario seeded environment-fault campaign.
#include <gtest/gtest.h>

#include <dirent.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/serialize.hpp"
#include "example_specs.hpp"
#include "graph/spec_io.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/durable.hpp"
#include "serve/fsck.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "tgff/generator.hpp"
#include "util/atomic_file.hpp"
#include "util/disk_format.hpp"
#include "util/error.hpp"
#include "util/io_faults.hpp"
#include "util/rng.hpp"

namespace crusade::serve {
namespace {

const ResourceLibrary& lib() {
  static const ResourceLibrary l = telecom_1999();
  return l;
}

std::string spec_text(const Specification& spec) {
  std::ostringstream out;
  write_specification(out, spec, lib());
  return out.str();
}

/// Small spec (~0.5 s headroom per run) for throughput-heavy tests.
const std::string& quickstart_text() {
  static const std::string text = spec_text(quickstart_spec(lib()));
  return text;
}

/// Larger synthetic spec whose synthesis takes long enough that a 1 ms
/// deadline reliably truncates the search.
const std::string& big_text() {
  static const std::string text = [] {
    SpecGenConfig config;
    config.total_tasks = 400;
    config.seed = 42;
    SpecGenerator gen(lib());
    return spec_text(gen.generate(config));
  }();
  return text;
}

/// Unique temp spool dir per test, removed recursively on destruction.
struct TempSpool {
  explicit TempSpool(const std::string& stem) {
    path = stem + "." + std::to_string(::getpid()) + ".spool-test";
    std::system(("rm -rf " + path).c_str());
  }
  ~TempSpool() { std::system(("rm -rf " + path).c_str()); }
  std::string path;
};

ServiceConfig fast_config(const std::string& spool) {
  ServiceConfig cfg;
  cfg.spool_dir = spool;
  cfg.workers = 2;
  cfg.queue_capacity = 64;
  cfg.max_attempts = 3;
  cfg.backoff_base_ms = 1;
  cfg.backoff_cap_ms = 10;
  cfg.checkpoint_every = 5;
  return cfg;
}

SubmitRequest make_request(const std::string& text,
                           JobKind kind = JobKind::Run) {
  SubmitRequest req;
  req.kind = kind;
  req.spec_text = text;
  return req;
}

JobStatus wait_terminal(Service& service, std::uint64_t id,
                        long timeout_ms = 60000) {
  JobStatus status;
  std::string body;
  EXPECT_TRUE(service.wait_result(id, timeout_ms, &status, &body))
      << "job " << id << " not terminal within " << timeout_ms << " ms";
  return status;
}

std::string json_field(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = body.find(needle);
  if (at == std::string::npos) return "";
  std::size_t start = at + needle.size();
  std::size_t end = start;
  if (body[start] == '"') {
    ++start;
    end = body.find('"', start);
  } else {
    end = body.find_first_of(",}", start);
  }
  return body.substr(start, end - start);
}

// --- protocol framing ------------------------------------------------------

TEST(ServeProtocolTest, SubmitRoundTrips) {
  SubmitRequest submit;
  submit.kind = JobKind::Survive;
  submit.priority = 7;
  submit.deadline_ms = 1234;
  submit.enable_reconfig = false;
  submit.survive_seeds = 9;
  submit.spec_text = "graph g {\n  period 1ms\n}\n";
  const Request wire = make_submit_request(submit);
  const Request decoded = decode_frame(encode_request(wire));
  const SubmitRequest back = parse_submit_request(decoded);
  EXPECT_EQ(back.kind, JobKind::Survive);
  EXPECT_EQ(back.priority, 7);
  EXPECT_EQ(back.deadline_ms, 1234);
  EXPECT_FALSE(back.enable_reconfig);
  EXPECT_EQ(back.survive_seeds, 9);
  EXPECT_EQ(back.spec_text, submit.spec_text);
}

TEST(ServeProtocolTest, ResponseRoundTrips) {
  Response r;
  r.ok = false;
  r.code = "busy";
  r.body = "{\"retry_after_ms\":120}";
  const Request frame = decode_frame(encode_response(r));
  EXPECT_EQ(frame.verb, "ERR");
  EXPECT_EQ(frame.get("code"), "busy");
  EXPECT_EQ(frame.body, r.body);
}

TEST(ServeProtocolTest, MalformedFramesThrowTyped) {
  EXPECT_THROW(decode_frame("no newline at all"), Error);
  EXPECT_THROW(decode_frame("SUBMIT kind=run\nmissing body field"), Error);
  EXPECT_THROW(decode_frame("SUBMIT body=5\nabc"), Error);   // short body
  EXPECT_THROW(decode_frame("SUBMIT body=-1\n"), Error);     // negative
  EXPECT_THROW(decode_frame("SUBMIT body=99999999999\n"), Error);
  EXPECT_THROW(decode_frame("body=0\n"), Error);             // no verb
  EXPECT_THROW(kind_from_string("frobnicate"), Error);
  Request bad;
  bad.verb = "SUBMIT";
  bad.fields["kind"] = "run";
  bad.fields["deadline_ms"] = "-5";
  EXPECT_THROW(parse_submit_request(bad), Error);
  bad.fields["deadline_ms"] = "soon";
  EXPECT_THROW(parse_submit_request(bad), Error);
}

TEST(ServeProtocolTest, HeaderRejectsFramingCharacters) {
  Request r;
  r.verb = "SUB MIT";
  EXPECT_THROW(encode_request(r), Error);
}

// --- queue ordering & admission control ------------------------------------

TEST(ServeServiceTest, PriorityOrderWithFifoTiebreak) {
  TempSpool spool("serve_test_priority");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.workers = 1;            // serialize execution to observe queue order
  cfg.start_paused = true;    // admit everything before any job runs
  Service service(cfg);

  SubmitRequest low = make_request(quickstart_text(), JobKind::Lint);
  low.priority = 0;
  SubmitRequest high = make_request(quickstart_text(), JobKind::Lint);
  high.priority = 5;
  SubmitRequest mid = make_request(quickstart_text(), JobKind::Lint);
  mid.priority = 2;

  // Vary the spec per submission so the cache cannot short-circuit order.
  low.spec_text += "\n# low-a\n";
  const auto a = service.submit(low);
  low.spec_text += "# low-b\n";
  const auto b = service.submit(low);
  high.spec_text += "\n# high\n";
  const auto c = service.submit(high);
  mid.spec_text += "\n# mid\n";
  const auto d = service.submit(mid);
  ASSERT_TRUE(a.admitted && b.admitted && c.admitted && d.admitted);

  service.resume_workers();
  const JobStatus sa = wait_terminal(service, a.id);
  const JobStatus sb = wait_terminal(service, b.id);
  const JobStatus sc = wait_terminal(service, c.id);
  const JobStatus sd = wait_terminal(service, d.id);

  // Highest priority first, then FIFO within a priority class.
  EXPECT_LT(sc.finish_seq, sd.finish_seq);
  EXPECT_LT(sd.finish_seq, sa.finish_seq);
  EXPECT_LT(sa.finish_seq, sb.finish_seq);
  service.stop(true);
}

TEST(ServeServiceTest, AdmissionControlRejectsHonestlyAtCapacity) {
  TempSpool spool("serve_test_busy");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.queue_capacity = 2;
  cfg.start_paused = true;
  Service service(cfg);

  SubmitRequest req = make_request(quickstart_text(), JobKind::Lint);
  req.spec_text += "\n# one\n";
  ASSERT_TRUE(service.submit(req).admitted);
  req.spec_text += "# two\n";
  ASSERT_TRUE(service.submit(req).admitted);
  req.spec_text += "# three\n";
  const SubmitOutcome rejected = service.submit(req);
  EXPECT_FALSE(rejected.admitted);
  EXPECT_TRUE(rejected.busy);
  EXPECT_GT(rejected.retry_after_ms, 0);
  EXPECT_EQ(service.stats().rejected_busy, 1);

  // Capacity frees as jobs drain; the same request is then admitted.
  service.resume_workers();
  SubmitOutcome retried;
  for (int i = 0; i < 200; ++i) {
    retried = service.submit(req);
    if (retried.admitted) break;
    ::usleep(20 * 1000);
  }
  EXPECT_TRUE(retried.admitted);
  service.stop(true);
}

TEST(ServeServiceTest, UnparseableSynthesisSpecRejectedUpFront) {
  TempSpool spool("serve_test_badspec");
  Service service(fast_config(spool.path));
  const SubmitOutcome out =
      service.submit(make_request("graph nonsense {{{", JobKind::Run));
  EXPECT_FALSE(out.admitted);
  EXPECT_FALSE(out.busy);
  EXPECT_FALSE(out.error.empty());
  EXPECT_EQ(service.stats().rejected_bad, 1);
  service.stop(true);
}

TEST(ServeServiceTest, UnparseableLintSpecIsAnHonestLintAnswer) {
  TempSpool spool("serve_test_lintbad");
  Service service(fast_config(spool.path));
  const SubmitOutcome out =
      service.submit(make_request("graph nonsense {{{", JobKind::Lint));
  ASSERT_TRUE(out.admitted);
  const JobStatus status = wait_terminal(service, out.id);
  EXPECT_EQ(status.outcome, JobOutcome::Ok);
  const auto body = service.result_body(out.id);
  ASSERT_TRUE(body.has_value());
  EXPECT_NE(body->find("A000"), std::string::npos);
  service.stop(true);
}

// --- deadlines & cancellation ----------------------------------------------

TEST(ServeServiceTest, DeadlineReturnsBestSoFarDegradedHonest) {
  TempSpool spool("serve_test_deadline");
  ServiceConfig cfg = fast_config(spool.path);
  // Under test is the worker's cooperative deadline stop, not the watchdog:
  // give the wrap-up (best-so-far validation of a 400-task spec) a generous
  // grace so sanitizer builds don't SIGKILL it mid-answer.
  cfg.watchdog_grace_ms = 60000;
  cfg.term_grace_ms = 60000;
  Service service(cfg);
  SubmitRequest req = make_request(big_text(), JobKind::Run);
  req.deadline_ms = 1;
  const SubmitOutcome out = service.submit(req);
  ASSERT_TRUE(out.admitted);
  const JobStatus status = wait_terminal(service, out.id);
  EXPECT_EQ(status.outcome, JobOutcome::DegradedHonest) << status.detail;
  const auto body = service.result_body(out.id);
  ASSERT_TRUE(body.has_value());
  // The body is a complete best-so-far answer, not an error: truncated flag
  // set, architecture hash present.
  EXPECT_EQ(json_field(*body, "stopped"), "true");
  EXPECT_FALSE(json_field(*body, "arch_hash").empty());
  service.stop(true);
}

TEST(ServeServiceTest, CancelQueuedJobNeverRuns) {
  TempSpool spool("serve_test_cancelq");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.start_paused = true;
  Service service(cfg);
  const SubmitOutcome out =
      service.submit(make_request(quickstart_text(), JobKind::Run));
  ASSERT_TRUE(out.admitted);
  EXPECT_TRUE(service.cancel(out.id));
  const JobStatus status = wait_terminal(service, out.id, 2000);
  EXPECT_EQ(status.outcome, JobOutcome::Cancelled);
  EXPECT_EQ(status.attempts, 0);
  service.resume_workers();
  service.stop(true);
  EXPECT_EQ(service.stats().cancelled, 1);
}

TEST(ServeServiceTest, CancelledQueuedJobReportsItsOwnKind) {
  TempSpool spool("serve_test_cancelkind");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.start_paused = true;
  Service service(cfg);
  const SubmitOutcome out =
      service.submit(make_request(quickstart_text(), JobKind::Lint));
  ASSERT_TRUE(out.admitted);
  EXPECT_TRUE(service.cancel(out.id));
  const JobStatus status = wait_terminal(service, out.id, 2000);
  EXPECT_EQ(status.outcome, JobOutcome::Cancelled);
  const auto body = service.result_body(out.id);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(json_field(*body, "kind"), "lint");
  service.resume_workers();
  service.stop(true);
}

TEST(ServeServiceTest, AdmittedJobIsSpooledBeforeWorkersCanSeeIt) {
  // Crash durability: the spool write happens inside the admission
  // critical section, so by the time submit() returns an id the .job file
  // is on disk — a daemon crash in the very next instruction loses nothing.
  TempSpool spool("serve_test_spoolfirst");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.start_paused = true;  // workers held: only admission has run
  Service service(cfg);
  const SubmitOutcome out =
      service.submit(make_request(quickstart_text(), JobKind::Run));
  ASSERT_TRUE(out.admitted);
  const std::string path =
      spool.path + "/jobs/" + std::to_string(out.id) + ".job";
  EXPECT_TRUE(std::ifstream(path).good()) << path << " not spooled";
  service.resume_workers();
  service.stop(true);
}

TEST(ServeServiceTest, TerminalJobsEvictedPastRetentionBound) {
  TempSpool spool("serve_test_retain");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.terminal_retain = 2;
  Service service(cfg);
  const SubmitOutcome first =
      service.submit(make_request(quickstart_text(), JobKind::Lint));
  ASSERT_TRUE(first.admitted);
  wait_terminal(service, first.id);
  // Identical re-submissions are cache hits: instantly terminal, each one
  // advancing the retention window deterministically.
  const SubmitOutcome second =
      service.submit(make_request(quickstart_text(), JobKind::Lint));
  ASSERT_TRUE(second.cached);
  const SubmitOutcome third =
      service.submit(make_request(quickstart_text(), JobKind::Lint));
  ASSERT_TRUE(third.cached);
  EXPECT_FALSE(service.status(first.id).has_value())
      << "oldest terminal job should have been evicted";
  EXPECT_TRUE(service.status(second.id).has_value());
  EXPECT_TRUE(service.status(third.id).has_value());
  EXPECT_TRUE(service.result_body(third.id).has_value());
  service.stop(true);
}

TEST(ServeServiceTest, CancelUnknownIdReturnsFalse) {
  TempSpool spool("serve_test_cancelu");
  Service service(fast_config(spool.path));
  EXPECT_FALSE(service.cancel(424242));
  service.stop(true);
}

TEST(ServeServiceTest, CancelRunningHungWorkerIsReaped) {
  TempSpool spool("serve_test_cancelr");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.term_grace_ms = 100;      // hang ignores SIGTERM; escalate fast
  cfg.attempt_timeout_ms = 60000;
  Service service(cfg);
  SubmitRequest req = make_request(quickstart_text(), JobKind::Run);
  req.fault_hang_attempts = 99;
  const SubmitOutcome out = service.submit(req);
  ASSERT_TRUE(out.admitted);
  // Give the worker time to fork and enter its hang loop.
  for (int i = 0; i < 200; ++i) {
    const auto status = service.status(out.id);
    ASSERT_TRUE(status.has_value());
    if (status->state == JobState::Running) break;
    ::usleep(10 * 1000);
  }
  EXPECT_TRUE(service.cancel(out.id));
  const JobStatus status = wait_terminal(service, out.id, 20000);
  EXPECT_EQ(status.outcome, JobOutcome::Cancelled);
  service.stop(true);
}

// --- supervised crash retry ------------------------------------------------

TEST(ServeServiceTest, CrashedWorkerRetriedFromCheckpointThenMasked) {
  TempSpool spool("serve_test_crash");
  Service service(fast_config(spool.path));

  // Baseline: the canonical answer for this spec, no faults.
  const SubmitOutcome clean =
      service.submit(make_request(quickstart_text(), JobKind::Run));
  ASSERT_TRUE(clean.admitted);
  const JobStatus clean_status = wait_terminal(service, clean.id);
  EXPECT_EQ(clean_status.outcome, JobOutcome::Ok);
  const std::string clean_body = *service.result_body(clean.id);

  // Same spec with one injected mid-run crash: the retry resumes from the
  // crashed attempt's checkpoint and must land on the identical answer.
  SubmitRequest faulty = make_request(quickstart_text(), JobKind::Run);
  faulty.fault_crash_attempts = 1;
  const SubmitOutcome out = service.submit(faulty);
  ASSERT_TRUE(out.admitted);
  EXPECT_FALSE(out.cached);  // fault injection must bypass the cache
  const JobStatus status = wait_terminal(service, out.id);
  EXPECT_EQ(status.outcome, JobOutcome::Masked) << status.detail;
  EXPECT_EQ(status.attempts, 2);
  const std::string body = *service.result_body(out.id);
  EXPECT_EQ(json_field(body, "resumed"), "true");
  // Bit-identity across the crash/resume boundary (DESIGN.md §11).
  EXPECT_EQ(json_field(body, "signature"), json_field(clean_body, "signature"));
  EXPECT_EQ(json_field(body, "arch_hash"), json_field(clean_body, "arch_hash"));
  EXPECT_GE(service.stats().crashes, 1);
  EXPECT_GE(service.stats().retries, 1);
  service.stop(true);
}

TEST(ServeServiceTest, CrashBudgetExhaustedIsFailedHonest) {
  TempSpool spool("serve_test_budget");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.max_attempts = 2;
  Service service(cfg);
  SubmitRequest req = make_request(quickstart_text(), JobKind::Run);
  req.fault_crash_attempts = 99;  // every attempt dies
  const SubmitOutcome out = service.submit(req);
  ASSERT_TRUE(out.admitted);
  const JobStatus status = wait_terminal(service, out.id);
  EXPECT_EQ(status.outcome, JobOutcome::FailedHonest);
  EXPECT_EQ(status.attempts, 2);
  const auto body = service.result_body(out.id);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(json_field(*body, "error_class"), "crash-budget");
  EXPECT_EQ(service.stats().crashes, 2);
  EXPECT_EQ(service.stats().failed_honest, 1);
  service.stop(true);
}

TEST(ServeServiceTest, WatchdogReapsHungWorker) {
  TempSpool spool("serve_test_watchdog");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.max_attempts = 1;
  cfg.attempt_timeout_ms = 200;
  cfg.term_grace_ms = 100;
  Service service(cfg);
  SubmitRequest req = make_request(quickstart_text(), JobKind::Run);
  req.fault_hang_attempts = 99;
  const SubmitOutcome out = service.submit(req);
  ASSERT_TRUE(out.admitted);
  const JobStatus status = wait_terminal(service, out.id, 30000);
  EXPECT_EQ(status.outcome, JobOutcome::FailedHonest);
  EXPECT_NE(status.detail.find("watchdog"), std::string::npos);
  EXPECT_GE(service.stats().watchdog_kills, 1);
  service.stop(true);
}

// --- telemetry: flight-recorder forensics & merged job traces ---------------

TEST(ServeServiceTest, WatchdogKillLeavesFlightEvidenceInHistory) {
  TempSpool spool("serve_test_flight");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.max_attempts = 1;
  cfg.attempt_timeout_ms = 300;
  cfg.term_grace_ms = 100;
  Service service(cfg);
  SubmitRequest req = make_request(quickstart_text(), JobKind::Run);
  req.fault_hang_attempts = 99;
  const SubmitOutcome out = service.submit(req);
  ASSERT_TRUE(out.admitted);
  const JobStatus status = wait_terminal(service, out.id, 30000);
  EXPECT_EQ(status.outcome, JobOutcome::FailedHonest);

  // The attempt history carries the flight-recorder forensics: the worker
  // was SIGKILLed inside its hang loop, and the ring (MAP_SHARED, written
  // back by the kernel) says so even though the process never exited
  // cleanly.
  ASSERT_EQ(status.history.size(), 1u);
  const AttemptRecord& rec = status.history[0];
  EXPECT_EQ(rec.attempt, 1);
  EXPECT_EQ(rec.fate, "watchdog");
  EXPECT_GE(rec.end_ms, rec.start_ms);
  ASSERT_GE(rec.crash_span_stack.size(), 2u);
  EXPECT_EQ(rec.crash_span_stack.front(), "serve.worker.attempt");
  EXPECT_EQ(rec.crash_span_stack.back(), "serve.worker.hang");
  bool saw_attempt_counter = false;
  for (const auto& [name, value] : rec.crash_counters)
    if (name == "serve.worker.attempts") {
      saw_attempt_counter = true;
      EXPECT_EQ(value, 1);
    }
  EXPECT_TRUE(saw_attempt_counter);

  // The same evidence rides the STATUS JSON envelope (crusade status --json).
  const std::string json = to_json(status);
  EXPECT_NE(json.find("\"fate\":\"watchdog\""), std::string::npos) << json;
  EXPECT_NE(json.find("serve.worker.hang"), std::string::npos) << json;
  service.stop(true);
}

TEST(ServeServiceTest, CrashRetriedJobYieldsOneMergedTrace) {
  TempSpool spool("serve_test_trace");
  Service service(fast_config(spool.path));
  SubmitRequest req = make_request(quickstart_text(), JobKind::Run);
  req.fault_crash_attempts = 1;
  const SubmitOutcome out = service.submit(req);
  ASSERT_TRUE(out.admitted);
  const JobStatus status = wait_terminal(service, out.id);
  ASSERT_EQ(status.outcome, JobOutcome::Masked) << status.detail;
  ASSERT_EQ(status.attempts, 2);

  const auto trace = service.job_trace_json(out.id);
  ASSERT_TRUE(trace.has_value());
  // One timeline, three process rows: the daemon plus both worker attempts
  // — the crashed first attempt reconstructed from its flight ring, the
  // successful second from its serialized trace file.
  EXPECT_NE(trace->find("\"name\":\"serve.queue_wait\""), std::string::npos);
  EXPECT_NE(trace->find("\"name\":\"serve.attempt\""), std::string::npos);
  EXPECT_NE(trace->find("\"name\":\"serve.retry_backoff\""),
            std::string::npos);
  EXPECT_NE(trace->find("\"pid\":1001"), std::string::npos) << *trace;
  EXPECT_NE(trace->find("\"pid\":1002"), std::string::npos) << *trace;
  EXPECT_NE(trace->find("serve.worker.attempt"), std::string::npos);
  EXPECT_NE(trace->find("\"trace_id\""), std::string::npos);
  // Structurally sound JSON: balanced braces/brackets (the daemon smoke in
  // check.sh validates the full Chrome schema with a real parser).
  long depth = 0;
  for (const char c : *trace) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);

  // Unknown ids answer nullopt, mirroring STATUS.
  EXPECT_FALSE(service.job_trace_json(424242).has_value());

  // The daemon-side histograms saw this job: one queue wait, one run, one
  // end-to-end completion, and the stats JSON embeds their percentiles.
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queue_wait_us.total(), 1u);
  EXPECT_EQ(stats.run_us.total(), 1u);
  EXPECT_EQ(stats.e2e_us.total(), 1u);
  EXPECT_GE(stats.e2e_us.max(), stats.run_us.max());
  const std::string stats_json = to_json(stats);
  EXPECT_NE(stats_json.find("\"queue_wait_us\":{\"count\":1"),
            std::string::npos) << stats_json;
  EXPECT_NE(stats_json.find("\"e2e_us\""), std::string::npos);
  service.stop(true);
}

// --- result cache ----------------------------------------------------------

TEST(ServeServiceTest, CacheHitReturnsBitIdenticalBytesInstantly) {
  TempSpool spool("serve_test_cache");
  Service service(fast_config(spool.path));
  const SubmitOutcome first =
      service.submit(make_request(quickstart_text(), JobKind::Run));
  ASSERT_TRUE(first.admitted);
  wait_terminal(service, first.id);
  const std::string original = *service.result_body(first.id);

  const SubmitOutcome second =
      service.submit(make_request(quickstart_text(), JobKind::Run));
  ASSERT_TRUE(second.admitted);
  EXPECT_TRUE(second.cached);
  const JobStatus status = wait_terminal(service, second.id, 1000);
  EXPECT_EQ(status.outcome, JobOutcome::Ok);
  EXPECT_TRUE(status.cached);
  EXPECT_EQ(status.attempts, 0);  // nothing ran
  EXPECT_EQ(*service.result_body(second.id), original);  // byte-identical
  EXPECT_EQ(service.stats().cache_hits, 1);

  // Different kind, same spec: a different key — no false sharing.
  const SubmitOutcome survive = service.submit(
      make_request(quickstart_text(), JobKind::Validate));
  ASSERT_TRUE(survive.admitted);
  EXPECT_FALSE(survive.cached);
  wait_terminal(service, survive.id);
  service.stop(true);
}

TEST(ServeServiceTest, CachePersistsAcrossRestart) {
  TempSpool spool("serve_test_cache_restart");
  std::string original;
  {
    Service service(fast_config(spool.path));
    const SubmitOutcome first =
        service.submit(make_request(quickstart_text(), JobKind::Run));
    ASSERT_TRUE(first.admitted);
    wait_terminal(service, first.id);
    original = *service.result_body(first.id);
    service.stop(true);
  }
  // A fresh incarnation on the same spool serves the hit from disk.
  Service service(fast_config(spool.path));
  const SubmitOutcome again =
      service.submit(make_request(quickstart_text(), JobKind::Run));
  ASSERT_TRUE(again.admitted);
  EXPECT_TRUE(again.cached);
  EXPECT_EQ(*service.result_body(again.id), original);
  service.stop(true);
}

// --- restart recovery ------------------------------------------------------

TEST(ServeServiceTest, QueuedJobsSurviveHardStopAndRecover) {
  TempSpool spool("serve_test_recover");
  std::vector<std::uint64_t> ids;
  {
    ServiceConfig cfg = fast_config(spool.path);
    cfg.start_paused = true;  // nothing runs; everything stays spooled
    Service service(cfg);
    for (int i = 0; i < 3; ++i) {
      SubmitRequest req = make_request(quickstart_text(), JobKind::Lint);
      req.spec_text += "\n# job " + std::to_string(i) + "\n";
      const SubmitOutcome out = service.submit(req);
      ASSERT_TRUE(out.admitted);
      ids.push_back(out.id);
    }
    service.stop(false);  // hard stop: park the queue in the spool
  }
  Service service(fast_config(spool.path));
  EXPECT_EQ(service.recovered_jobs(), 3);
  for (const std::uint64_t id : ids) {
    const JobStatus status = wait_terminal(service, id);
    EXPECT_EQ(status.outcome, JobOutcome::Ok);
    EXPECT_TRUE(status.recovered);
  }
  service.stop(true);  // join workers so every spool cleanup has landed
  // Everything terminal: the spool owes the next incarnation nothing.
  Service empty(fast_config(spool.path));
  EXPECT_EQ(empty.recovered_jobs(), 0);
  empty.stop(true);
}

TEST(ServeServiceTest, CorruptSpoolEntryQuarantinedNotFatal) {
  TempSpool spool("serve_test_corrupt");
  {
    Service service(fast_config(spool.path));
    service.stop(true);
  }
  std::ofstream(spool.path + "/jobs/7.job") << "JOB id=7 body=9999\nshort";
  Service service(fast_config(spool.path));
  EXPECT_EQ(service.recovered_jobs(), 0);
  // Still fully operational.
  const SubmitOutcome out =
      service.submit(make_request(quickstart_text(), JobKind::Lint));
  EXPECT_TRUE(out.admitted);
  wait_terminal(service, out.id);
  service.stop(true);
}

// --- graceful shutdown -----------------------------------------------------

TEST(ServeServiceTest, DrainStopCompletesEveryAdmittedJob) {
  TempSpool spool("serve_test_drain");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.start_paused = true;
  Service service(cfg);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    SubmitRequest req = make_request(quickstart_text(), JobKind::Lint);
    req.spec_text += "\n# drain " + std::to_string(i) + "\n";
    const SubmitOutcome out = service.submit(req);
    ASSERT_TRUE(out.admitted);
    ids.push_back(out.id);
  }
  service.resume_workers();
  service.stop(true);  // drain: blocks until the queue is empty
  for (const std::uint64_t id : ids) {
    const auto status = service.status(id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, JobState::Done);
    EXPECT_EQ(status->outcome, JobOutcome::Ok);
  }
  // Draining honoured the admission promise; nothing parked, nothing lost.
  EXPECT_EQ(service.stats().finished, 6);
}

TEST(ServeServiceTest, SubmitAfterStopIsRejectedAsShuttingDown) {
  TempSpool spool("serve_test_shut");
  Service service(fast_config(spool.path));
  service.stop(true);
  const SubmitOutcome out =
      service.submit(make_request(quickstart_text(), JobKind::Lint));
  EXPECT_FALSE(out.admitted);
  EXPECT_TRUE(out.shutting_down);
}

// --- the 100-job mixed crash campaign (acceptance criteria) ----------------

TEST(ServeServiceTest, HundredJobCampaignZeroLostZeroDuplicated) {
  TempSpool spool("serve_test_campaign");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.workers = 4;
  cfg.queue_capacity = 128;
  cfg.term_grace_ms = 200;
  cfg.attempt_timeout_ms = 30000;
  Service service(cfg);

  constexpr int kJobs = 100;
  std::vector<std::uint64_t> ids;
  std::set<std::uint64_t> unique_ids;
  int expect_crashers = 0;
  for (int i = 0; i < kJobs; ++i) {
    SubmitRequest req;
    switch (i % 5) {
      case 0: req.kind = JobKind::Run; break;
      case 1: req.kind = JobKind::Lint; break;
      case 2: req.kind = JobKind::Validate; break;
      case 3: req.kind = JobKind::Run; break;
      case 4:
        req.kind = (i % 25 == 4) ? JobKind::Survive : JobKind::Run;
        req.survive_seeds = 3;
        break;
    }
    req.spec_text = quickstart_text() + "\n# campaign job " +
                    std::to_string(i) + "\n";
    req.priority = i % 3;
    if (i % 5 == 3) {
      req.fault_crash_attempts = 1;  // injected worker crash
      ++expect_crashers;
    }
    if (i % 10 == 7) req.deadline_ms = 1 + i % 5;  // short deadlines
    const SubmitOutcome out = service.submit(req);
    ASSERT_TRUE(out.admitted) << "job " << i << ": " << out.error;
    ids.push_back(out.id);
    unique_ids.insert(out.id);
  }
  ASSERT_EQ(unique_ids.size(), ids.size());  // zero duplicated

  int ok = 0, masked = 0, degraded = 0, failed = 0, cancelled = 0;
  for (const std::uint64_t id : ids) {
    const JobStatus status = wait_terminal(service, id, 120000);
    ASSERT_EQ(status.state, JobState::Done);      // zero lost
    ASSERT_NE(status.outcome, JobOutcome::None);  // every end is honest
    switch (status.outcome) {
      case JobOutcome::Ok: ++ok; break;
      case JobOutcome::Masked: ++masked; break;
      case JobOutcome::DegradedHonest: ++degraded; break;
      case JobOutcome::FailedHonest: ++failed; break;
      case JobOutcome::Cancelled: ++cancelled; break;
      case JobOutcome::None: break;
    }
    // Terminal jobs always carry a result body.
    EXPECT_TRUE(service.result_body(id).has_value());
  }
  service.stop(true);

  EXPECT_EQ(ok + masked + degraded + failed + cancelled, kJobs);
  EXPECT_EQ(cancelled, 0);           // nobody cancelled anything
  EXPECT_EQ(failed, 0);              // every crash was masked within budget
  EXPECT_GE(masked, expect_crashers / 2);  // crash injection really fired
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.finished, kJobs);
  EXPECT_GE(stats.crashes, expect_crashers);
  EXPECT_GE(stats.retries, expect_crashers);
}

// --- worker resource governance ---------------------------------------------

TEST(ServeServiceTest, ResourceDeathRetriedAtReducedBudgetDegradedHonest) {
  TempSpool spool("serve_test_rsrc");
  Service service(fast_config(spool.path));
  SubmitRequest req = make_request(quickstart_text(), JobKind::Run);
  req.fault_resource_attempts = 1;  // first attempt dies on SIGXCPU
  const SubmitOutcome out = service.submit(req);
  ASSERT_TRUE(out.admitted) << out.error;
  const JobStatus status = wait_terminal(service, out.id);

  // Resource exhaustion is NOT a crash: one retry at reduced budget, and
  // the answer is honest about both the cap and which limit fired.
  ASSERT_EQ(status.outcome, JobOutcome::DegradedHonest) << status.detail;
  EXPECT_EQ(status.attempts, 2);
  EXPECT_NE(status.detail.find("reduced search budget"), std::string::npos)
      << status.detail;
  EXPECT_NE(status.detail.find("RLIMIT_CPU (cpu seconds)"),
            std::string::npos)
      << status.detail;
  ASSERT_GE(status.history.size(), 1u);
  EXPECT_EQ(status.history[0].fate, "resource");

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.resource_exhausted, 1);
  EXPECT_EQ(stats.crashes, 0);  // never charged to the crash budget
  EXPECT_EQ(stats.failed_honest, 0);
  service.stop(true);
}

TEST(ServeServiceTest, SecondResourceDeathFailsHonestWithLimitNamed) {
  TempSpool spool("serve_test_rsrc2");
  Service service(fast_config(spool.path));
  SubmitRequest req = make_request(quickstart_text(), JobKind::Run);
  req.fault_resource_attempts = 99;  // every attempt dies on the limit
  const SubmitOutcome out = service.submit(req);
  ASSERT_TRUE(out.admitted);
  const JobStatus status = wait_terminal(service, out.id);

  ASSERT_EQ(status.outcome, JobOutcome::FailedHonest);
  EXPECT_EQ(status.attempts, 2);  // exactly one reduced-budget retry
  EXPECT_NE(status.detail.find("resource-exhausted"), std::string::npos);
  EXPECT_NE(status.detail.find("RLIMIT_CPU (cpu seconds)"),
            std::string::npos);
  const std::string body = *service.result_body(out.id);
  EXPECT_NE(body.find("resource-exhausted"), std::string::npos) << body;

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.resource_exhausted, 2);
  EXPECT_EQ(stats.crashes, 0);
  EXPECT_EQ(stats.failed_honest, 1);
  service.stop(true);
}

// --- idempotency keys --------------------------------------------------------

TEST(ServeServiceTest, NonceResubmitAttachesToExistingJob) {
  TempSpool spool("serve_test_idem");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.start_paused = true;  // the first submit stays live and queued
  Service service(cfg);

  SubmitRequest req = make_request(quickstart_text(), JobKind::Lint);
  req.client_nonce = "retry-token-1";
  const SubmitOutcome first = service.submit(req);
  ASSERT_TRUE(first.admitted);
  EXPECT_FALSE(first.duplicate);

  // The wire-level story: the reply was lost, the client resubmits with
  // the same nonce — it must attach, not duplicate the work.
  const SubmitOutcome again = service.submit(req);
  ASSERT_TRUE(again.admitted);
  EXPECT_TRUE(again.duplicate);
  EXPECT_EQ(again.id, first.id);
  EXPECT_EQ(service.stats().duplicates_attached, 1);

  // A different nonce is a different intent: fresh job.
  SubmitRequest other = req;
  other.client_nonce = "retry-token-2";
  const SubmitOutcome fresh = service.submit(other);
  ASSERT_TRUE(fresh.admitted);
  EXPECT_FALSE(fresh.duplicate);
  EXPECT_NE(fresh.id, first.id);

  // No nonce, same spec: also a fresh job (idempotency is opt-in).
  SubmitRequest plain = make_request(quickstart_text(), JobKind::Lint);
  const SubmitOutcome anon = service.submit(plain);
  ASSERT_TRUE(anon.admitted);
  EXPECT_FALSE(anon.duplicate);
  EXPECT_NE(anon.id, first.id);

  service.resume_workers();
  wait_terminal(service, first.id);
  wait_terminal(service, fresh.id);
  wait_terminal(service, anon.id);

  // Even after the job went terminal, the same nonce still attaches to it
  // while it is retained — the late retry reads the finished result.
  const SubmitOutcome late = service.submit(req);
  ASSERT_TRUE(late.admitted);
  EXPECT_TRUE(late.duplicate);
  EXPECT_EQ(late.id, first.id);
  EXPECT_TRUE(service.result_body(late.id).has_value());
  service.stop(true);
}

// --- client resilience -------------------------------------------------------

TEST(ServeClientTest, SilentDaemonSurfacesTypedDaemonUnresponsive) {
  // A socket that accepts connections but never answers: the pathological
  // wedged daemon.  The client must fail typed within its bound, never
  // hang `crusade submit --wait` forever.
  TempSpool spool("serve_test_silent");
  const std::string sock = spool.path + ".sock";
  (void)::unlink(sock.c_str());
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ASSERT_LT(sock.size(), sizeof addr.sun_path);
  std::memcpy(addr.sun_path, sock.c_str(), sock.size() + 1);
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof addr),
            0);
  ASSERT_EQ(::listen(listener, 8), 0);

  ClientConfig ccfg;
  ccfg.connect_timeout_ms = 2000;
  ccfg.recv_timeout_ms = 150;
  Client client(sock, ccfg);
  Request ping;
  ping.verb = "PING";
  const auto started = std::chrono::steady_clock::now();
  try {
    client.call(ping);
    FAIL() << "silent daemon did not time out";
  } catch (const DaemonUnresponsive& e) {
    EXPECT_EQ(e.error_number(), ETIMEDOUT);
    EXPECT_NE(std::string(e.what()).find("did not reply"),
              std::string::npos)
        << e.what();
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - started);
  EXPECT_LT(elapsed.count(), 5000) << "timeout not bounded";

  // call_resilient retries the transient failure, then rethrows typed.
  ClientConfig rcfg = ccfg;
  rcfg.max_tries = 2;
  rcfg.retry_base_ms = 10;
  rcfg.retry_cap_ms = 50;
  client.set_config(rcfg);
  EXPECT_THROW(client.call_resilient(ping), DaemonUnresponsive);

  (void)::close(listener);
  (void)::unlink(sock.c_str());
}

// --- chaos: injected environment faults --------------------------------------

/// RAII cleanup so no test can leak an armed fault plan into its neighbours.
struct ChaosGuard {
  ~ChaosGuard() {
    iofault::disarm();
    iofault::reset_counters();
  }
};

TEST(ServeChaosTest, TornSpoolWriteQuarantinedOnRecovery) {
  ChaosGuard guard;
  TempSpool spool("serve_test_torn");
  std::uint64_t torn_id = 0;
  {
    ServiceConfig cfg = fast_config(spool.path);
    cfg.start_paused = true;
    Service service(cfg);
    // Every rename during this submit is torn: the job file reaches its
    // final name half-written — the exact on-disk image of a power loss.
    iofault::Plan plan;
    plan.seed = 3;
    plan.rate = 1.0;
    plan.kinds = 1u << static_cast<unsigned>(iofault::Kind::TornRename);
    iofault::arm(plan);
    const SubmitOutcome out =
        service.submit(make_request(quickstart_text(), JobKind::Lint));
    iofault::disarm();
    ASSERT_TRUE(out.admitted);  // the write "succeeded" — that is the trap
    torn_id = out.id;
    EXPECT_GE(iofault::counters().injected[static_cast<unsigned>(
                  iofault::Kind::TornRename)],
              1u);
    service.stop(false);  // hard stop: the torn file is all that remains
  }

  // Recovery must detect the torn frame, quarantine it with the evidence
  // intact, and keep serving — never re-admit garbage, never crash.  The
  // admission was acknowledged and journaled, so the job does not vanish:
  // fsck writes a failed-honest tombstone that status() serves instead of
  // a not-found lie.
  Service service(fast_config(spool.path));
  EXPECT_EQ(service.recovered_jobs(), 0);
  EXPECT_EQ(service.stats().spool_quarantined, 1);
  const std::optional<JobStatus> torn_status = service.status(torn_id);
  ASSERT_TRUE(torn_status.has_value());
  EXPECT_EQ(torn_status->outcome, JobOutcome::FailedHonest);
  const std::optional<std::string> torn_body = service.result_body(torn_id);
  ASSERT_TRUE(torn_body.has_value());
  EXPECT_NE(torn_body->find("fsck-lost-job"), std::string::npos);
  const std::string corrupt =
      spool.path + "/jobs/" + std::to_string(torn_id) + ".job.corrupt";
  EXPECT_NO_THROW((void)read_file(corrupt)) << "quarantine evidence missing";

  const SubmitOutcome out =
      service.submit(make_request(quickstart_text(), JobKind::Lint));
  ASSERT_TRUE(out.admitted);
  wait_terminal(service, out.id);
  service.stop(true);
}

// --- durability: the write-ahead journal -------------------------------------

TEST(ServeDurabilityTest, JournalAppendReplayTornTailAndRewrite) {
  TempSpool spool("serve_test_journal");
  ASSERT_EQ(::mkdir(spool.path.c_str(), 0755), 0);
  const std::string wal = spool.path + "/wal";

  JournalRecord admitted;
  admitted.type = JournalRecordType::Admitted;
  admitted.id = 7;
  admitted.kind = static_cast<std::uint8_t>(JobKind::Lint);
  admitted.spec_fnv = 0x1234;
  JournalRecord terminal;
  terminal.type = JournalRecordType::Terminal;
  terminal.id = 7;
  terminal.outcome = static_cast<std::uint8_t>(JobOutcome::Ok);
  terminal.attempts = 1;
  terminal.result_fnv = 0x5678;
  {
    Journal journal;
    ASSERT_TRUE(journal.open(wal));
    ASSERT_GT(journal.append(admitted), 0u);
    ASSERT_GT(journal.append(terminal), 0u);
    EXPECT_EQ(journal.append_failures(), 0u);
  }

  JournalReplay replayed = Journal::replay(wal);
  EXPECT_TRUE(replayed.header_error.empty()) << replayed.header_error;
  EXPECT_FALSE(replayed.torn_tail);
  ASSERT_EQ(replayed.records.size(), 2u);
  EXPECT_EQ(replayed.records[0].type, JournalRecordType::Admitted);
  EXPECT_EQ(replayed.records[0].spec_fnv, 0x1234u);
  EXPECT_EQ(replayed.records[1].type, JournalRecordType::Terminal);
  EXPECT_EQ(replayed.records[1].result_fnv, 0x5678u);
  const std::uint64_t whole = replayed.valid_bytes;

  // A torn append (power loss mid-write) must not poison the valid prefix.
  {
    std::ofstream tear(wal, std::ios::binary | std::ios::app);
    tear << "torn";
  }
  replayed = Journal::replay(wal);
  EXPECT_TRUE(replayed.torn_tail);
  ASSERT_EQ(replayed.records.size(), 2u);
  EXPECT_EQ(replayed.valid_bytes, whole);
  ASSERT_TRUE(Journal::truncate_tail(wal, replayed.valid_bytes));
  replayed = Journal::replay(wal);
  EXPECT_FALSE(replayed.torn_tail);
  EXPECT_EQ(replayed.records.size(), 2u);

  // A foreign header can only be rebuilt, never trusted.
  atomic_write_file(wal, "XXXXnot-a-journal");
  replayed = Journal::replay(wal);
  EXPECT_FALSE(replayed.header_error.empty());

  // Compaction rewrite: exactly the handed-over records come back.
  ASSERT_TRUE(Journal::rewrite(wal, {admitted}));
  replayed = Journal::replay(wal);
  EXPECT_TRUE(replayed.header_error.empty()) << replayed.header_error;
  ASSERT_EQ(replayed.records.size(), 1u);
  EXPECT_EQ(replayed.records[0].id, 7u);
}

// --- durability: results across hard restarts --------------------------------

TEST(ServeDurabilityTest, ResultsSurviveHardStopBitIdentical) {
  TempSpool spool("serve_test_durable");
  std::uint64_t ok_id = 0, failed_id = 0, degraded_id = 0;
  std::string ok_json, failed_json, degraded_json;
  std::string ok_body, failed_body, degraded_body;
  {
    Service service(fast_config(spool.path));

    const SubmitOutcome ok_out =
        service.submit(make_request(quickstart_text(), JobKind::Run));
    ASSERT_TRUE(ok_out.admitted);
    ok_id = ok_out.id;

    SubmitRequest fail_req = make_request(quickstart_text(), JobKind::Run);
    fail_req.fault_crash_attempts = 99;  // every attempt dies: failed-honest
    const SubmitOutcome fail_out = service.submit(fail_req);
    ASSERT_TRUE(fail_out.admitted);
    failed_id = fail_out.id;

    SubmitRequest deg_req = make_request(quickstart_text(), JobKind::Run);
    deg_req.fault_resource_attempts = 1;  // retried reduced: degraded-honest
    const SubmitOutcome deg_out = service.submit(deg_req);
    ASSERT_TRUE(deg_out.admitted);
    degraded_id = deg_out.id;

    EXPECT_EQ(wait_terminal(service, ok_id).outcome, JobOutcome::Ok);
    EXPECT_EQ(wait_terminal(service, failed_id).outcome,
              JobOutcome::FailedHonest);
    EXPECT_EQ(wait_terminal(service, degraded_id).outcome,
              JobOutcome::DegradedHonest);

    ok_json = to_json(*service.status(ok_id));
    failed_json = to_json(*service.status(failed_id));
    degraded_json = to_json(*service.status(degraded_id));
    ok_body = *service.result_body(ok_id);
    failed_body = *service.result_body(failed_id);
    degraded_body = *service.result_body(degraded_id);
    EXPECT_GE(service.stats().results_persisted, 3);
    service.stop(false);  // hard stop: only the durable store survives
  }

  // Every terminal answer — including the failures and their retry
  // histories — comes back bit-identical from the durable result store.
  Service service(fast_config(spool.path));
  EXPECT_GE(service.stats().results_recovered, 3);
  EXPECT_EQ(service.recovered_jobs(), 0);  // nothing needed re-execution
  ASSERT_TRUE(service.status(ok_id).has_value());
  EXPECT_EQ(to_json(*service.status(ok_id)), ok_json);
  EXPECT_EQ(to_json(*service.status(failed_id)), failed_json);
  EXPECT_EQ(to_json(*service.status(degraded_id)), degraded_json);
  EXPECT_EQ(*service.result_body(ok_id), ok_body);
  EXPECT_EQ(*service.result_body(failed_id), failed_body);
  EXPECT_EQ(*service.result_body(degraded_id), degraded_body);
  const JobStatus failed = *service.status(failed_id);
  ASSERT_FALSE(failed.history.empty());
  EXPECT_EQ(failed.history.front().fate, "crash");
  service.stop(true);
}

TEST(ServeDurabilityTest, RestartStormZeroLossZeroDuplicates) {
  TempSpool spool("serve_test_storm");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.terminal_retain = 256;  // the audit needs every answer retained
  std::set<std::uint64_t> all_ids;
  std::map<std::uint64_t, std::string> durable_view;  // id -> status json
  std::map<std::uint64_t, std::string> durable_body;
  for (int cycle = 0; cycle < 4; ++cycle) {
    Service service(cfg);
    // Zero lost: every job ever admitted still answers after the crash —
    // from the durable store, a re-admitted spool frame, or an honest
    // fsck tombstone.  Never a not-found.
    for (const std::uint64_t id : all_ids)
      ASSERT_TRUE(service.status(id).has_value())
          << "cycle " << cycle << " lost job " << id;
    // Zero duplicated: whatever was durably terminal at the last crash is
    // bit-identical now — re-execution would have changed it.
    for (const auto& [id, snap] : durable_view) {
      EXPECT_EQ(to_json(*service.status(id)), snap)
          << "job " << id << " changed across restart " << cycle;
      EXPECT_EQ(*service.result_body(id), durable_body[id]);
    }
    for (int i = 0; i < 3; ++i) {
      const SubmitOutcome out =
          service.submit(make_request(quickstart_text(), JobKind::Lint));
      ASSERT_TRUE(out.admitted);
      all_ids.insert(out.id);
    }
    // Drain a couple, then pull the plug with the rest queued or mid-run.
    std::size_t waited = 0;
    for (auto it = all_ids.rbegin(); it != all_ids.rend() && waited < 2;
         ++it, ++waited)
      wait_terminal(service, *it, 120000);
    // Snapshot the durable view the next incarnation must reproduce.
    // (Jobs that went terminal after being re-admitted carry a live
    // recovered=true flag this life; the durable store reloads them with
    // recovered=false, so they enter the snapshot one restart later.)
    durable_view.clear();
    durable_body.clear();
    for (const std::uint64_t id : all_ids) {
      const std::optional<JobStatus> status = service.status(id);
      if (!status.has_value() || status->finish_seq == 0 ||
          status->recovered)
        continue;
      durable_view[id] = to_json(*status);
      durable_body[id] = service.result_body(id).value_or("");
    }
    service.stop(false);  // SIGKILL-shaped: no drain, no cleanup
  }
  // Final calm incarnation: everything drains to an honest terminal state.
  Service service(cfg);
  for (const std::uint64_t id : all_ids) wait_terminal(service, id, 120000);
  service.stop(true);
}

// --- boot-time fsck -----------------------------------------------------------

namespace fscktest {

/// A framed spool job entry as spool_job writes it.
std::string job_frame(std::uint64_t id) {
  Request frame;
  frame.verb = "JOB";
  frame.fields["id"] = std::to_string(id);
  return encode_request(frame);
}

/// Seeds one instance of every repairable corruption class under `root`:
///   jobs/2.job     valid + admitted (healthy: must be left alone)
///   jobs/3.job     stale (journal says terminal, result evicted)
///   jobs/6.job     orphan (journal never admitted it)
///   jobs/8.job     corrupt frame
///   results/1.res  orphan result (no terminal record)
///   results/9.res  corrupt result
///   id 4           terminal in the journal, result file missing
///   id 5           admitted, no frame, no result (lost)
///   cache/*.res    corrupt cache entry
///   .tmp.123       atomic-write debris
///   jobs/notes.txt unattributable bytes (ledger drift)
/// plus a torn journal tail.
void seed_corrupt_spool(const std::string& root) {
  for (const std::string& dir :
       {root, root + "/jobs", root + "/results", root + "/cache",
        root + "/journal"})
    ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0) << dir;
  {
    Journal journal;
    ASSERT_TRUE(journal.open(root + "/journal/wal"));
    JournalRecord rec;
    rec.type = JournalRecordType::Admitted;
    rec.id = 2;
    rec.spec_fnv = ckpt::fnv1a(job_frame(2));
    ASSERT_GT(journal.append(rec), 0u);
    rec.id = 3;
    ASSERT_GT(journal.append(rec), 0u);
    rec.type = JournalRecordType::Terminal;
    rec.outcome = static_cast<std::uint8_t>(JobOutcome::Ok);
    rec.attempts = 1;
    ASSERT_GT(journal.append(rec), 0u);
    rec.type = JournalRecordType::ResultEvicted;
    ASSERT_GT(journal.append(rec), 0u);
    rec = JournalRecord{};
    rec.type = JournalRecordType::Admitted;
    rec.id = 4;
    ASSERT_GT(journal.append(rec), 0u);
    rec.type = JournalRecordType::Terminal;
    rec.outcome = static_cast<std::uint8_t>(JobOutcome::Ok);
    rec.attempts = 1;
    ASSERT_GT(journal.append(rec), 0u);
    rec = JournalRecord{};
    rec.type = JournalRecordType::Admitted;
    rec.id = 5;
    ASSERT_GT(journal.append(rec), 0u);
  }
  {
    std::ofstream tear(root + "/journal/wal",
                       std::ios::binary | std::ios::app);
    tear << "torn";
  }
  for (const std::uint64_t id : {2ull, 3ull, 6ull})
    diskfmt::write_framed_file(root + "/jobs/" + std::to_string(id) + ".job",
                               kSpoolJobMagic, kSpoolJobVersion,
                               job_frame(id));
  atomic_write_file(root + "/jobs/8.job", "not a framed job at all");
  DurableResult orphan;
  orphan.id = 1;
  orphan.kind = JobKind::Lint;
  orphan.outcome = JobOutcome::Ok;
  orphan.attempts = 1;
  orphan.finish_seq = 1;
  orphan.body = "{\"ok\":true}";
  diskfmt::write_framed_file(root + "/results/1.res", kDurableResultMagic,
                             kDurableResultVersion,
                             encode_durable_result(orphan));
  atomic_write_file(root + "/results/9.res", "definitely not a result");
  atomic_write_file(root + "/cache/0123456789abcdef.res", "stale cache junk");
  atomic_write_file(root + "/.tmp.123", "atomic-write leftovers");
  atomic_write_file(root + "/jobs/notes.txt", "who put this here");
}

}  // namespace fscktest

TEST(ServeFsckTest, RepairsEverySeededCorruptionClass) {
  TempSpool spool("serve_test_fsck");
  fscktest::seed_corrupt_spool(spool.path);

  const FsckReport report = fsck_spool(spool.path, /*repair=*/true);
  EXPECT_EQ(report.count(FsckFinding::TornJournalTail), 1);
  EXPECT_EQ(report.count(FsckFinding::CorruptSpoolEntry), 1);
  EXPECT_EQ(report.count(FsckFinding::OrphanSpoolEntry), 1);
  EXPECT_EQ(report.count(FsckFinding::StaleSpoolEntry), 1);
  EXPECT_EQ(report.count(FsckFinding::CorruptResult), 1);
  EXPECT_EQ(report.count(FsckFinding::OrphanResult), 1);
  EXPECT_EQ(report.count(FsckFinding::MissingResult), 1);
  EXPECT_EQ(report.count(FsckFinding::LostSpoolEntry), 1);
  EXPECT_EQ(report.count(FsckFinding::CorruptCacheEntry), 1);
  EXPECT_EQ(report.count(FsckFinding::TempDebris), 1);
  EXPECT_EQ(report.count(FsckFinding::LedgerDrift), 1);
  EXPECT_EQ(report.repair_failures, 0) << report.to_json();

  // The world after repair: evidence kept, garbage gone, promises honest.
  struct stat st;
  EXPECT_EQ(::stat((spool.path + "/jobs/2.job").c_str(), &st), 0)
      << "healthy entry must survive untouched";
  EXPECT_NE(::stat((spool.path + "/jobs/3.job").c_str(), &st), 0)
      << "stale frame must be removed, not re-executed";
  EXPECT_EQ(::stat((spool.path + "/jobs/8.job.corrupt").c_str(), &st), 0)
      << "corrupt frame quarantined with evidence";
  EXPECT_EQ(::stat((spool.path + "/results/9.res.corrupt").c_str(), &st), 0);
  EXPECT_NE(::stat((spool.path + "/cache/0123456789abcdef.res").c_str(), &st),
            0);
  EXPECT_NE(::stat((spool.path + "/.tmp.123").c_str(), &st), 0);
  for (const std::uint64_t id : {4ull, 5ull}) {
    const std::string path =
        spool.path + "/results/" + std::to_string(id) + ".res";
    const DurableResult tomb = decode_durable_result(
        diskfmt::read_framed_file(path, kDurableResultMagic,
                                  kDurableResultVersion)
            .payload);
    EXPECT_EQ(tomb.outcome, JobOutcome::FailedHonest) << id;
    EXPECT_FALSE(tomb.detail.empty()) << id;
  }

  // Idempotence: a second scrub finds nothing but the (deliberately
  // unrepairable) drift bytes still sitting in jobs/.
  const FsckReport second = fsck_spool(spool.path, /*repair=*/true);
  for (const FsckItem& item : second.items)
    EXPECT_EQ(item.finding, FsckFinding::LedgerDrift)
        << to_string(item.finding) << " " << item.path << " " << item.action;
}

TEST(ServeFsckTest, DetectOnlyModeChangesNothing) {
  TempSpool spool("serve_test_fsck_ro");
  fscktest::seed_corrupt_spool(spool.path);
  const FsckReport report = fsck_spool(spool.path, /*repair=*/false);
  EXPECT_EQ(report.repairs, 0);
  EXPECT_EQ(report.quarantines, 0);
  for (const FsckItem& item : report.items) {
    // Drift is "charged" even here: the recount is accounting, not repair.
    if (item.finding == FsckFinding::LedgerDrift) continue;
    EXPECT_EQ(item.action.substr(0, 8), "detected") << item.action;
  }
  // Nothing on disk moved: the corrupt frame is still in place, unrenamed.
  struct stat st;
  EXPECT_EQ(::stat((spool.path + "/jobs/8.job").c_str(), &st), 0);
  EXPECT_NE(::stat((spool.path + "/jobs/8.job.corrupt").c_str(), &st), 0);
  // A repairing pass over the same spool then converges.
  const FsckReport repaired = fsck_spool(spool.path, /*repair=*/true);
  EXPECT_GT(repaired.repairs, 0);
}

TEST(ServeFsckTest, SurvivesChaosAndConvergesOnceCalm) {
  ChaosGuard guard;
  TempSpool spool("serve_test_fsck_chaos");
  fscktest::seed_corrupt_spool(spool.path);

  // Every repair path runs through the iofault seam: with faults armed at
  // a high rate the scrub must return (never throw), counting what the
  // filesystem refused as repair-failed.
  iofault::Plan plan;  // default kinds: the full fault menagerie
  plan.seed = 11;
  plan.rate = 0.5;
  iofault::arm(plan);
  const FsckReport stormy = fsck_spool(spool.path, /*repair=*/true);
  iofault::disarm();
  EXPECT_GT(iofault::counters().total, 0u) << "chaos never actually fired";
  (void)stormy;  // returning at all is the contract under chaos

  // Once the weather clears, repeated calm scrubs reach the same clean
  // fixpoint as an unmolested repair run.
  (void)fsck_spool(spool.path, /*repair=*/true);
  const FsckReport final_pass = fsck_spool(spool.path, /*repair=*/true);
  for (const FsckItem& item : final_pass.items)
    EXPECT_EQ(item.finding, FsckFinding::LedgerDrift)
        << to_string(item.finding) << " " << item.path << " " << item.action;
}

TEST(ServeDurabilityTest, QuarantineEvidenceChargedAndCappedOldestFirst) {
  TempSpool spool("serve_test_qcap");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.quarantine_retain = 2;
  {
    Service bootstrap(cfg);  // lays out the spool directories
    bootstrap.stop(true);
  }
  for (int i = 1; i <= 5; ++i) {
    const std::string path =
        spool.path + "/jobs/" + std::to_string(i) + ".job.corrupt";
    atomic_write_file(path, "evidence-" + std::to_string(i));
    // Deterministic ages: file i is i seconds old at the epoch.
    timespec times[2] = {{i, 0}, {i, 0}};
    ASSERT_EQ(::utimensat(AT_FDCWD, path.c_str(), times, 0), 0);
  }
  Service service(cfg);
  EXPECT_EQ(service.stats().quarantine_evicted, 3);
  struct stat st;
  for (int i = 1; i <= 3; ++i)
    EXPECT_NE(::stat((spool.path + "/jobs/" + std::to_string(i) +
                      ".job.corrupt")
                         .c_str(),
                     &st),
              0)
        << "oldest evidence " << i << " must be evicted first";
  long long surviving = 0;
  for (int i = 4; i <= 5; ++i) {
    const std::string path =
        spool.path + "/jobs/" + std::to_string(i) + ".job.corrupt";
    ASSERT_EQ(::stat(path.c_str(), &st), 0) << "retained evidence missing";
    surviving += static_cast<long long>(st.st_size);
  }
  // The evidence that stays is charged to the disk ledger, not free-riding.
  EXPECT_GE(service.stats().disk_used_bytes, surviving);
  service.stop(true);
}

TEST(ServeDurabilityTest, LedgerRecountChargesAndFlagsDrift) {
  TempSpool spool("serve_test_drift");
  {
    Service bootstrap(fast_config(spool.path));
    bootstrap.stop(true);
  }
  // 4 KiB of bytes no artifact pattern explains: the recount must charge
  // them (so the budget stays honest) and flag the drift.
  atomic_write_file(spool.path + "/jobs/unaccounted.bin",
                    std::string(4096, 'x'));
  Service service(fast_config(spool.path));
  EXPECT_EQ(service.stats().ledger_drift_bytes, 4096);
  EXPECT_GE(service.stats().disk_used_bytes, 4096);
  EXPECT_GT(service.stats().fsck_findings, 0);
  service.stop(true);
}

// --- disk budget and cost-aware cache ----------------------------------------

TEST(ServeServiceTest, DiskBudgetExhaustionIsATypedRejection) {
  TempSpool spool("serve_test_diskfull");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.disk_budget_bytes = 1024;  // smaller than any spooled submit
  Service service(cfg);
  const SubmitOutcome out =
      service.submit(make_request(quickstart_text(), JobKind::Lint));
  EXPECT_FALSE(out.admitted);
  EXPECT_TRUE(out.disk_full);
  EXPECT_FALSE(out.busy);
  EXPECT_NE(out.error.find("disk budget exhausted"), std::string::npos)
      << out.error;
  EXPECT_EQ(service.stats().rejected_disk, 1);

  // Nothing was written: the jobs spool holds no file for the reject.
  DIR* d = ::opendir((spool.path + "/jobs").c_str());
  ASSERT_NE(d, nullptr);
  int files = 0;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name != "." && name != "..") ++files;
  }
  ::closedir(d);
  EXPECT_EQ(files, 0);
  service.stop(true);
}

TEST(ServeServiceTest, CacheEvictsCheapestToRecomputeNotOldest) {
  TempSpool spool("serve_test_costcache");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.cache_capacity = 1;
  Service service(cfg);

  // Expensive entry first: a full synthesis run.
  const SubmitOutcome costly =
      service.submit(make_request(quickstart_text(), JobKind::Run));
  ASSERT_TRUE(costly.admitted);
  wait_terminal(service, costly.id);

  // Cheap entry second: a parse-only lint.  LRU would now evict the older
  // (expensive) run entry; cost-aware eviction drops the cheap newcomer,
  // because re-linting costs milliseconds and re-synthesizing does not.
  const SubmitOutcome cheap =
      service.submit(make_request(quickstart_text() + "\n# lint variant\n",
                                  JobKind::Lint));
  ASSERT_TRUE(cheap.admitted);
  wait_terminal(service, cheap.id);
  EXPECT_GE(service.stats().cache_evictions, 1);

  const SubmitOutcome run_again =
      service.submit(make_request(quickstart_text(), JobKind::Run));
  ASSERT_TRUE(run_again.admitted);
  EXPECT_TRUE(run_again.cached) << "expensive entry was evicted";
  const SubmitOutcome lint_again = service.submit(
      make_request(quickstart_text() + "\n# lint variant\n", JobKind::Lint));
  ASSERT_TRUE(lint_again.admitted);
  EXPECT_FALSE(lint_again.cached) << "cheap entry was retained";
  wait_terminal(service, run_again.id);
  wait_terminal(service, lint_again.id);
  service.stop(true);
}

// --- the seeded chaos campaign (acceptance criteria) -------------------------

struct ChaosScenario {
  int index = 0;
  JobKind kind = JobKind::Lint;
  int priority = 0;
  long deadline_ms = 0;
  int fault_crash = 0;
  int fault_resource = 0;
  bool nonce_resubmit = false;

  bool operator==(const ChaosScenario& o) const {
    return index == o.index && kind == o.kind && priority == o.priority &&
           deadline_ms == o.deadline_ms && fault_crash == o.fault_crash &&
           fault_resource == o.fault_resource &&
           nonce_resubmit == o.nonce_resubmit;
  }
};

/// The campaign plan is a pure function of its seed: same seed, same
/// scenarios, bit for bit.  The test builds it twice and asserts equality
/// before running anything — the whole campaign replays from one number.
std::vector<ChaosScenario> build_chaos_plan(std::uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<ChaosScenario> plan;
  plan.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ChaosScenario s;
    s.index = i;
    const double kind_roll = rng.uniform();
    if (kind_roll < 0.78) s.kind = JobKind::Lint;
    else if (kind_roll < 0.86) s.kind = JobKind::Validate;
    else if (kind_roll < 0.94) s.kind = JobKind::Run;
    else s.kind = JobKind::Survive;
    s.priority = static_cast<int>(rng.uniform_int(0, 2));
    if (rng.chance(0.10))
      s.deadline_ms = 1 + static_cast<long>(rng.uniform_int(0, 4));
    if (rng.chance(0.12)) s.fault_crash = 1;
    else if (rng.chance(0.08)) s.fault_resource = 1;
    s.nonce_resubmit = rng.chance(0.15);
    plan.push_back(s);
  }
  return plan;
}

TEST(ServeChaosTest, SeededCampaignZeroLostZeroDuplicatedAllHonest) {
  constexpr std::uint64_t kSeed = 20260808;
  constexpr int kScenarios = 210;
  const std::vector<ChaosScenario> plan = build_chaos_plan(kSeed, kScenarios);
  ASSERT_TRUE(plan == build_chaos_plan(kSeed, kScenarios))
      << "campaign plan is not reproducible from its seed";

  ChaosGuard guard;
  TempSpool spool("serve_test_chaoscamp");
  ServiceConfig base = fast_config(spool.path);
  base.workers = 4;
  base.queue_capacity = 16;  // small on purpose: bursts must hit busy
  base.term_grace_ms = 200;
  base.attempt_timeout_ms = 30000;

  const auto spec_for = [&](int i) {
    return quickstart_text() + "\n# chaos scenario " + std::to_string(i) +
           "\n";
  };
  const auto request_for = [&](const ChaosScenario& s) {
    SubmitRequest req;
    req.kind = s.kind;
    req.spec_text = spec_for(s.index);
    req.priority = s.priority;
    req.deadline_ms = s.deadline_ms;
    req.fault_crash_attempts = s.fault_crash;
    req.fault_resource_attempts = s.fault_resource;
    req.survive_seeds = 2;
    if (s.nonce_resubmit)
      req.client_nonce = "chaos-" + std::to_string(s.index);
    return req;
  };

  // Job ids are unique within one service incarnation (recovery preserves
  // ids, so the counter restarts past the surviving jobs — terminal ids
  // from before the crash may be reissued).  Uniqueness is asserted per
  // incarnation.
  std::set<std::uint64_t> ids1;
  std::set<std::uint64_t> ids2;
  int honest_rejections = 0;  // typed spool/bad rejections under chaos
  int busy_gave_up = 0;
  int duplicates = 0;

  // Submit with the busy contract honoured: every rejection's hint must be
  // sane, and sleeping it must converge instead of stampeding.
  const auto submit_with_retry = [&](Service& service,
                                     const SubmitRequest& req)
      -> SubmitOutcome {
    for (int attempt = 0; attempt < 100; ++attempt) {
      const SubmitOutcome out = service.submit(req);
      if (!out.busy) return out;
      EXPECT_GE(out.retry_after_ms, 10);
      EXPECT_LE(out.retry_after_ms, 60000);
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::min<long>(out.retry_after_ms, 100)));
    }
    SubmitOutcome gave_up;
    gave_up.busy = true;
    return gave_up;
  };

  const auto run_slice = [&](Service& service, int begin, int end,
                             std::map<std::uint64_t, int>* admitted,
                             std::set<std::uint64_t>* ids) {
    for (int i = begin; i < end; ++i) {
      const ChaosScenario& s = plan[static_cast<std::size_t>(i)];
      const SubmitRequest req = request_for(s);
      const SubmitOutcome out = submit_with_retry(service, req);
      if (out.busy) {
        ++busy_gave_up;
        continue;
      }
      if (!out.admitted) {
        // Injected environment faults make some spools fail — but every
        // such failure is typed and says why.  Silence is the only bug.
        EXPECT_FALSE(out.error.empty()) << "scenario " << i;
        ++honest_rejections;
        continue;
      }
      if (!out.duplicate && !out.cached) {
        EXPECT_TRUE(ids->insert(out.id).second)
            << "scenario " << i << " reused id " << out.id;
      }
      admitted->emplace(out.id, i);
      if (s.nonce_resubmit) {
        // Lost-reply retry: same request, same nonce — must attach.
        const SubmitOutcome re = service.submit(req);
        if (re.admitted) {
          EXPECT_TRUE(re.duplicate) << "scenario " << i;
          EXPECT_EQ(re.id, out.id) << "scenario " << i;
          if (re.duplicate) ++duplicates;
        }
      }
    }
  };

  // Checks every admitted job of one incarnation: terminal jobs must carry
  // an honest outcome and a result body; still-queued ids are returned as
  // the parked set the next incarnation must account for.
  const auto audit = [&](Service& service,
                         const std::map<std::uint64_t, int>& admitted)
      -> std::vector<std::uint64_t> {
    std::vector<std::uint64_t> parked;
    for (const auto& [id, scenario] : admitted) {
      const auto status = service.status(id);
      if (!status.has_value()) {
        ADD_FAILURE() << "job " << id << " vanished";
        continue;
      }
      if (status->state != JobState::Done) {
        parked.push_back(id);
        continue;
      }
      EXPECT_NE(status->outcome, JobOutcome::None) << "job " << id;
      if (status->outcome == JobOutcome::FailedHonest ||
          status->outcome == JobOutcome::DegradedHonest) {
        EXPECT_FALSE(status->detail.empty()) << "job " << id;
      }
      EXPECT_TRUE(service.result_body(id).has_value()) << "job " << id;
    }
    return parked;
  };

  // --- incarnation 1: 140 scenarios under low-rate chaos, then a hard stop
  std::vector<std::uint64_t> parked;
  std::map<std::uint64_t, int> admitted1;
  {
    ServiceConfig cfg = base;
    cfg.chaos_seed = kSeed;  // armed through the config, as crusaded does
    cfg.chaos_rate = 0.02;
    Service service(cfg);
    ASSERT_TRUE(iofault::armed());
    run_slice(service, 0, 140, &admitted1, &ids1);
    service.stop(false);  // hard stop mid-flight: park whatever is queued
    parked = audit(service, admitted1);
  }
  EXPECT_GT(iofault::counters().total, 0u) << "chaos never actually fired";

  // --- incarnation 2: recovery with chaos still armed, then the rest
  std::map<std::uint64_t, int> admitted2;
  std::size_t ids2_new = 0;
  {
    ServiceConfig cfg = base;
    cfg.chaos_seed = kSeed + 1;
    cfg.chaos_rate = 0.02;
    Service service(cfg);
    const long long quarantined = service.stats().spool_quarantined;

    // Every parked id either came back or was quarantined with evidence —
    // nothing simply vanished.
    int lost = 0;
    for (const std::uint64_t id : parked)
      if (!service.status(id).has_value()) ++lost;
    EXPECT_LE(lost, quarantined)
        << "jobs disappeared without quarantine evidence";
    std::size_t seeded = 0;
    for (const std::uint64_t id : parked)
      if (service.status(id).has_value()) {
        admitted2.emplace(id, -1);
        ids2.insert(id);  // survivors keep their ids: new ids must differ
        ++seeded;
      }

    run_slice(service, 140, kScenarios, &admitted2, &ids2);
    ids2_new = ids2.size() - seeded;

    // Calm the environment and drain everything to terminal.
    iofault::disarm();
    for (const auto& [id, scenario] : admitted2)
      wait_terminal(service, id, 120000);
    EXPECT_TRUE(audit(service, admitted2).empty());

    // Bit-identical cached answers: resubmitting a completed fault-free
    // scenario verbatim serves the original bytes.
    int verified_cached = 0;
    for (const auto& [id, scenario] : admitted2) {
      if (verified_cached >= 3) break;
      if (scenario < 0) continue;
      const ChaosScenario& s = plan[static_cast<std::size_t>(scenario)];
      if (s.fault_crash != 0 || s.fault_resource != 0 || s.nonce_resubmit)
        continue;
      const auto status = service.status(id);
      if (!status.has_value() || status->outcome != JobOutcome::Ok) continue;
      const std::string original = *service.result_body(id);
      const SubmitOutcome re = service.submit(request_for(s));
      ASSERT_TRUE(re.admitted);
      EXPECT_TRUE(re.cached) << "scenario " << scenario;
      EXPECT_EQ(*service.result_body(re.id), original)
          << "scenario " << scenario << " not bit-identical";
      ++verified_cached;
    }
    EXPECT_GT(verified_cached, 0);

    service.stop(true);
  }

  // --- corpus invariants across both incarnations
  // The campaign really exercised the mixed fates it was built from.
  EXPECT_GT(static_cast<int>(ids1.size() + ids2_new), 150);
  EXPECT_GT(duplicates, 0);
  EXPECT_EQ(busy_gave_up, 0) << "honouring retry_after_ms did not converge";

  // An injected unlink failure can leave a terminal job's frame on disk —
  // the documented drift that "the recovery rescan corrects on the next
  // start".  Hold the service to that promise: a third, calm incarnation
  // re-admits every orphan frame, we drain them, and only then must the
  // spool be truly clean (quarantined evidence is the one sanctioned
  // leftover).
  const auto job_frames = [&] {
    std::vector<std::uint64_t> frames;
    DIR* d = ::opendir((spool.path + "/jobs").c_str());
    EXPECT_NE(d, nullptr);
    if (d == nullptr) return frames;
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name.size() > 4 && name.substr(name.size() - 4) == ".job")
        frames.push_back(std::strtoull(name.c_str(), nullptr, 10));
    }
    ::closedir(d);
    return frames;
  };
  const std::vector<std::uint64_t> orphans = job_frames();
  {
    Service service(base);  // chaos_seed = 0: a calm environment
    // Each leftover frame is either re-admitted (no durable answer yet) or
    // reconciled away (its terminal result already survived on disk — re-
    // running it would be a duplicate execution).  Nothing else.
    EXPECT_EQ(service.recovered_jobs() +
                  static_cast<int>(service.stats().spool_reconciled),
              static_cast<int>(orphans.size()));
    for (const std::uint64_t id : orphans) wait_terminal(service, id, 120000);
    service.stop(true);
  }
  EXPECT_TRUE(job_frames().empty()) << "orphan frames survived a calm restart";
}

// --- daemon + client over the socket ---------------------------------------

TEST(ServeDaemonTest, SocketEndToEnd) {
  TempSpool spool("serve_test_daemon");
  const std::string socket_path =
      spool.path + ".sock";  // short path (AF_UNIX limit)
  DaemonConfig cfg;
  cfg.socket_path = socket_path;
  cfg.service = fast_config(spool.path);
  Daemon daemon(cfg);
  std::thread runner([&daemon] { daemon.run(); });

  Client client(socket_path);
  ASSERT_TRUE(client.ping());

  // Submit-and-wait round trip.
  SubmitRequest submit = make_request(quickstart_text(), JobKind::Run);
  Request wire = make_submit_request(submit);
  wire.fields["wait_ms"] = "60000";
  const Response done = client.call(wire);
  ASSERT_TRUE(done.ok) << done.body;
  EXPECT_EQ(json_field(done.body, "outcome"), "ok");
  const std::string id = json_field(done.body, "id");
  ASSERT_FALSE(id.empty());

  // STATUS/RESULT agree with the submit reply.
  Request status_req;
  status_req.verb = "STATUS";
  status_req.fields["id"] = id;
  const Response status = client.call(status_req);
  ASSERT_TRUE(status.ok);
  EXPECT_EQ(json_field(status.body, "state"), "done");

  Request result_req;
  result_req.verb = "RESULT";
  result_req.fields["id"] = id;
  const Response result = client.call(result_req);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(json_field(result.body, "outcome"), "ok");

  // Unknown ids and verbs earn typed errors, not hangs or disconnects.
  Request missing;
  missing.verb = "RESULT";
  missing.fields["id"] = "999999";
  const Response not_found = client.call(missing);
  EXPECT_FALSE(not_found.ok);
  EXPECT_EQ(not_found.code, "not-found");

  Request bogus;
  bogus.verb = "FROBNICATE";
  const Response bad = client.call(bogus);
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.code, "bad-request");

  // Cached resubmission over the wire is byte-identical.
  const Response cached = client.call(wire);
  ASSERT_TRUE(cached.ok);
  EXPECT_EQ(json_field(cached.body, "cached"), "true");
  EXPECT_EQ(json_field(cached.body, "result"),
            json_field(done.body, "result"));

  Request shutdown;
  shutdown.verb = "SHUTDOWN";
  const Response stopping = client.call(shutdown);
  EXPECT_TRUE(stopping.ok);
  runner.join();
  EXPECT_FALSE(client.ping());  // socket gone after shutdown
}

TEST(ServeDaemonTest, SecondDaemonOnLiveSocketRefused) {
  TempSpool spool("serve_test_daemon2");
  DaemonConfig cfg;
  cfg.socket_path = spool.path + ".sock";
  cfg.service = fast_config(spool.path);
  Daemon daemon(cfg);
  std::thread runner([&daemon] { daemon.run(); });
  Client client(cfg.socket_path);
  ASSERT_TRUE(client.ping());

  DaemonConfig rival = cfg;
  rival.service.spool_dir = spool.path + ".rival";
  EXPECT_THROW({ Daemon second(rival); }, Error);
  std::system(("rm -rf " + rival.service.spool_dir).c_str());

  daemon.request_shutdown(true);
  runner.join();

  // A stale socket file from a dead daemon is reclaimed, not fatal.
  std::ofstream(cfg.socket_path) << "";
  Daemon reborn(cfg);
  std::thread runner2([&reborn] { reborn.run(); });
  EXPECT_TRUE(client.ping());
  reborn.request_shutdown(true);
  runner2.join();
}

}  // namespace
}  // namespace crusade::serve
