// Tests for the crusaded synthesis service (src/serve, DESIGN.md §13):
// protocol framing, priority queue ordering, admission control, deadline
// truncation to best-so-far, supervised crash retry with checkpoint resume,
// watchdog escalation, the crash-budget failed-honest path, result-cache
// bit-identity, spool-backed restart recovery, cancellation of queued and
// running jobs, daemon+client socket round-trips, and the 100-job mixed
// crash campaign the acceptance criteria name: zero lost, zero duplicated,
// every job terminal with an honest outcome.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "example_specs.hpp"
#include "graph/spec_io.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "tgff/generator.hpp"
#include "util/error.hpp"

namespace crusade::serve {
namespace {

const ResourceLibrary& lib() {
  static const ResourceLibrary l = telecom_1999();
  return l;
}

std::string spec_text(const Specification& spec) {
  std::ostringstream out;
  write_specification(out, spec, lib());
  return out.str();
}

/// Small spec (~0.5 s headroom per run) for throughput-heavy tests.
const std::string& quickstart_text() {
  static const std::string text = spec_text(quickstart_spec(lib()));
  return text;
}

/// Larger synthetic spec whose synthesis takes long enough that a 1 ms
/// deadline reliably truncates the search.
const std::string& big_text() {
  static const std::string text = [] {
    SpecGenConfig config;
    config.total_tasks = 400;
    config.seed = 42;
    SpecGenerator gen(lib());
    return spec_text(gen.generate(config));
  }();
  return text;
}

/// Unique temp spool dir per test, removed recursively on destruction.
struct TempSpool {
  explicit TempSpool(const std::string& stem) {
    path = stem + "." + std::to_string(::getpid()) + ".spool-test";
    std::system(("rm -rf " + path).c_str());
  }
  ~TempSpool() { std::system(("rm -rf " + path).c_str()); }
  std::string path;
};

ServiceConfig fast_config(const std::string& spool) {
  ServiceConfig cfg;
  cfg.spool_dir = spool;
  cfg.workers = 2;
  cfg.queue_capacity = 64;
  cfg.max_attempts = 3;
  cfg.backoff_base_ms = 1;
  cfg.backoff_cap_ms = 10;
  cfg.checkpoint_every = 5;
  return cfg;
}

SubmitRequest make_request(const std::string& text,
                           JobKind kind = JobKind::Run) {
  SubmitRequest req;
  req.kind = kind;
  req.spec_text = text;
  return req;
}

JobStatus wait_terminal(Service& service, std::uint64_t id,
                        long timeout_ms = 60000) {
  JobStatus status;
  std::string body;
  EXPECT_TRUE(service.wait_result(id, timeout_ms, &status, &body))
      << "job " << id << " not terminal within " << timeout_ms << " ms";
  return status;
}

std::string json_field(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = body.find(needle);
  if (at == std::string::npos) return "";
  std::size_t start = at + needle.size();
  std::size_t end = start;
  if (body[start] == '"') {
    ++start;
    end = body.find('"', start);
  } else {
    end = body.find_first_of(",}", start);
  }
  return body.substr(start, end - start);
}

// --- protocol framing ------------------------------------------------------

TEST(ServeProtocolTest, SubmitRoundTrips) {
  SubmitRequest submit;
  submit.kind = JobKind::Survive;
  submit.priority = 7;
  submit.deadline_ms = 1234;
  submit.enable_reconfig = false;
  submit.survive_seeds = 9;
  submit.spec_text = "graph g {\n  period 1ms\n}\n";
  const Request wire = make_submit_request(submit);
  const Request decoded = decode_frame(encode_request(wire));
  const SubmitRequest back = parse_submit_request(decoded);
  EXPECT_EQ(back.kind, JobKind::Survive);
  EXPECT_EQ(back.priority, 7);
  EXPECT_EQ(back.deadline_ms, 1234);
  EXPECT_FALSE(back.enable_reconfig);
  EXPECT_EQ(back.survive_seeds, 9);
  EXPECT_EQ(back.spec_text, submit.spec_text);
}

TEST(ServeProtocolTest, ResponseRoundTrips) {
  Response r;
  r.ok = false;
  r.code = "busy";
  r.body = "{\"retry_after_ms\":120}";
  const Request frame = decode_frame(encode_response(r));
  EXPECT_EQ(frame.verb, "ERR");
  EXPECT_EQ(frame.get("code"), "busy");
  EXPECT_EQ(frame.body, r.body);
}

TEST(ServeProtocolTest, MalformedFramesThrowTyped) {
  EXPECT_THROW(decode_frame("no newline at all"), Error);
  EXPECT_THROW(decode_frame("SUBMIT kind=run\nmissing body field"), Error);
  EXPECT_THROW(decode_frame("SUBMIT body=5\nabc"), Error);   // short body
  EXPECT_THROW(decode_frame("SUBMIT body=-1\n"), Error);     // negative
  EXPECT_THROW(decode_frame("SUBMIT body=99999999999\n"), Error);
  EXPECT_THROW(decode_frame("body=0\n"), Error);             // no verb
  EXPECT_THROW(kind_from_string("frobnicate"), Error);
  Request bad;
  bad.verb = "SUBMIT";
  bad.fields["kind"] = "run";
  bad.fields["deadline_ms"] = "-5";
  EXPECT_THROW(parse_submit_request(bad), Error);
  bad.fields["deadline_ms"] = "soon";
  EXPECT_THROW(parse_submit_request(bad), Error);
}

TEST(ServeProtocolTest, HeaderRejectsFramingCharacters) {
  Request r;
  r.verb = "SUB MIT";
  EXPECT_THROW(encode_request(r), Error);
}

// --- queue ordering & admission control ------------------------------------

TEST(ServeServiceTest, PriorityOrderWithFifoTiebreak) {
  TempSpool spool("serve_test_priority");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.workers = 1;            // serialize execution to observe queue order
  cfg.start_paused = true;    // admit everything before any job runs
  Service service(cfg);

  SubmitRequest low = make_request(quickstart_text(), JobKind::Lint);
  low.priority = 0;
  SubmitRequest high = make_request(quickstart_text(), JobKind::Lint);
  high.priority = 5;
  SubmitRequest mid = make_request(quickstart_text(), JobKind::Lint);
  mid.priority = 2;

  // Vary the spec per submission so the cache cannot short-circuit order.
  low.spec_text += "\n# low-a\n";
  const auto a = service.submit(low);
  low.spec_text += "# low-b\n";
  const auto b = service.submit(low);
  high.spec_text += "\n# high\n";
  const auto c = service.submit(high);
  mid.spec_text += "\n# mid\n";
  const auto d = service.submit(mid);
  ASSERT_TRUE(a.admitted && b.admitted && c.admitted && d.admitted);

  service.resume_workers();
  const JobStatus sa = wait_terminal(service, a.id);
  const JobStatus sb = wait_terminal(service, b.id);
  const JobStatus sc = wait_terminal(service, c.id);
  const JobStatus sd = wait_terminal(service, d.id);

  // Highest priority first, then FIFO within a priority class.
  EXPECT_LT(sc.finish_seq, sd.finish_seq);
  EXPECT_LT(sd.finish_seq, sa.finish_seq);
  EXPECT_LT(sa.finish_seq, sb.finish_seq);
  service.stop(true);
}

TEST(ServeServiceTest, AdmissionControlRejectsHonestlyAtCapacity) {
  TempSpool spool("serve_test_busy");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.queue_capacity = 2;
  cfg.start_paused = true;
  Service service(cfg);

  SubmitRequest req = make_request(quickstart_text(), JobKind::Lint);
  req.spec_text += "\n# one\n";
  ASSERT_TRUE(service.submit(req).admitted);
  req.spec_text += "# two\n";
  ASSERT_TRUE(service.submit(req).admitted);
  req.spec_text += "# three\n";
  const SubmitOutcome rejected = service.submit(req);
  EXPECT_FALSE(rejected.admitted);
  EXPECT_TRUE(rejected.busy);
  EXPECT_GT(rejected.retry_after_ms, 0);
  EXPECT_EQ(service.stats().rejected_busy, 1);

  // Capacity frees as jobs drain; the same request is then admitted.
  service.resume_workers();
  SubmitOutcome retried;
  for (int i = 0; i < 200; ++i) {
    retried = service.submit(req);
    if (retried.admitted) break;
    ::usleep(20 * 1000);
  }
  EXPECT_TRUE(retried.admitted);
  service.stop(true);
}

TEST(ServeServiceTest, UnparseableSynthesisSpecRejectedUpFront) {
  TempSpool spool("serve_test_badspec");
  Service service(fast_config(spool.path));
  const SubmitOutcome out =
      service.submit(make_request("graph nonsense {{{", JobKind::Run));
  EXPECT_FALSE(out.admitted);
  EXPECT_FALSE(out.busy);
  EXPECT_FALSE(out.error.empty());
  EXPECT_EQ(service.stats().rejected_bad, 1);
  service.stop(true);
}

TEST(ServeServiceTest, UnparseableLintSpecIsAnHonestLintAnswer) {
  TempSpool spool("serve_test_lintbad");
  Service service(fast_config(spool.path));
  const SubmitOutcome out =
      service.submit(make_request("graph nonsense {{{", JobKind::Lint));
  ASSERT_TRUE(out.admitted);
  const JobStatus status = wait_terminal(service, out.id);
  EXPECT_EQ(status.outcome, JobOutcome::Ok);
  const auto body = service.result_body(out.id);
  ASSERT_TRUE(body.has_value());
  EXPECT_NE(body->find("A000"), std::string::npos);
  service.stop(true);
}

// --- deadlines & cancellation ----------------------------------------------

TEST(ServeServiceTest, DeadlineReturnsBestSoFarDegradedHonest) {
  TempSpool spool("serve_test_deadline");
  ServiceConfig cfg = fast_config(spool.path);
  // Under test is the worker's cooperative deadline stop, not the watchdog:
  // give the wrap-up (best-so-far validation of a 400-task spec) a generous
  // grace so sanitizer builds don't SIGKILL it mid-answer.
  cfg.watchdog_grace_ms = 60000;
  cfg.term_grace_ms = 60000;
  Service service(cfg);
  SubmitRequest req = make_request(big_text(), JobKind::Run);
  req.deadline_ms = 1;
  const SubmitOutcome out = service.submit(req);
  ASSERT_TRUE(out.admitted);
  const JobStatus status = wait_terminal(service, out.id);
  EXPECT_EQ(status.outcome, JobOutcome::DegradedHonest) << status.detail;
  const auto body = service.result_body(out.id);
  ASSERT_TRUE(body.has_value());
  // The body is a complete best-so-far answer, not an error: truncated flag
  // set, architecture hash present.
  EXPECT_EQ(json_field(*body, "stopped"), "true");
  EXPECT_FALSE(json_field(*body, "arch_hash").empty());
  service.stop(true);
}

TEST(ServeServiceTest, CancelQueuedJobNeverRuns) {
  TempSpool spool("serve_test_cancelq");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.start_paused = true;
  Service service(cfg);
  const SubmitOutcome out =
      service.submit(make_request(quickstart_text(), JobKind::Run));
  ASSERT_TRUE(out.admitted);
  EXPECT_TRUE(service.cancel(out.id));
  const JobStatus status = wait_terminal(service, out.id, 2000);
  EXPECT_EQ(status.outcome, JobOutcome::Cancelled);
  EXPECT_EQ(status.attempts, 0);
  service.resume_workers();
  service.stop(true);
  EXPECT_EQ(service.stats().cancelled, 1);
}

TEST(ServeServiceTest, CancelledQueuedJobReportsItsOwnKind) {
  TempSpool spool("serve_test_cancelkind");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.start_paused = true;
  Service service(cfg);
  const SubmitOutcome out =
      service.submit(make_request(quickstart_text(), JobKind::Lint));
  ASSERT_TRUE(out.admitted);
  EXPECT_TRUE(service.cancel(out.id));
  const JobStatus status = wait_terminal(service, out.id, 2000);
  EXPECT_EQ(status.outcome, JobOutcome::Cancelled);
  const auto body = service.result_body(out.id);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(json_field(*body, "kind"), "lint");
  service.resume_workers();
  service.stop(true);
}

TEST(ServeServiceTest, AdmittedJobIsSpooledBeforeWorkersCanSeeIt) {
  // Crash durability: the spool write happens inside the admission
  // critical section, so by the time submit() returns an id the .job file
  // is on disk — a daemon crash in the very next instruction loses nothing.
  TempSpool spool("serve_test_spoolfirst");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.start_paused = true;  // workers held: only admission has run
  Service service(cfg);
  const SubmitOutcome out =
      service.submit(make_request(quickstart_text(), JobKind::Run));
  ASSERT_TRUE(out.admitted);
  const std::string path =
      spool.path + "/jobs/" + std::to_string(out.id) + ".job";
  EXPECT_TRUE(std::ifstream(path).good()) << path << " not spooled";
  service.resume_workers();
  service.stop(true);
}

TEST(ServeServiceTest, TerminalJobsEvictedPastRetentionBound) {
  TempSpool spool("serve_test_retain");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.terminal_retain = 2;
  Service service(cfg);
  const SubmitOutcome first =
      service.submit(make_request(quickstart_text(), JobKind::Lint));
  ASSERT_TRUE(first.admitted);
  wait_terminal(service, first.id);
  // Identical re-submissions are cache hits: instantly terminal, each one
  // advancing the retention window deterministically.
  const SubmitOutcome second =
      service.submit(make_request(quickstart_text(), JobKind::Lint));
  ASSERT_TRUE(second.cached);
  const SubmitOutcome third =
      service.submit(make_request(quickstart_text(), JobKind::Lint));
  ASSERT_TRUE(third.cached);
  EXPECT_FALSE(service.status(first.id).has_value())
      << "oldest terminal job should have been evicted";
  EXPECT_TRUE(service.status(second.id).has_value());
  EXPECT_TRUE(service.status(third.id).has_value());
  EXPECT_TRUE(service.result_body(third.id).has_value());
  service.stop(true);
}

TEST(ServeServiceTest, CancelUnknownIdReturnsFalse) {
  TempSpool spool("serve_test_cancelu");
  Service service(fast_config(spool.path));
  EXPECT_FALSE(service.cancel(424242));
  service.stop(true);
}

TEST(ServeServiceTest, CancelRunningHungWorkerIsReaped) {
  TempSpool spool("serve_test_cancelr");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.term_grace_ms = 100;      // hang ignores SIGTERM; escalate fast
  cfg.attempt_timeout_ms = 60000;
  Service service(cfg);
  SubmitRequest req = make_request(quickstart_text(), JobKind::Run);
  req.fault_hang_attempts = 99;
  const SubmitOutcome out = service.submit(req);
  ASSERT_TRUE(out.admitted);
  // Give the worker time to fork and enter its hang loop.
  for (int i = 0; i < 200; ++i) {
    const auto status = service.status(out.id);
    ASSERT_TRUE(status.has_value());
    if (status->state == JobState::Running) break;
    ::usleep(10 * 1000);
  }
  EXPECT_TRUE(service.cancel(out.id));
  const JobStatus status = wait_terminal(service, out.id, 20000);
  EXPECT_EQ(status.outcome, JobOutcome::Cancelled);
  service.stop(true);
}

// --- supervised crash retry ------------------------------------------------

TEST(ServeServiceTest, CrashedWorkerRetriedFromCheckpointThenMasked) {
  TempSpool spool("serve_test_crash");
  Service service(fast_config(spool.path));

  // Baseline: the canonical answer for this spec, no faults.
  const SubmitOutcome clean =
      service.submit(make_request(quickstart_text(), JobKind::Run));
  ASSERT_TRUE(clean.admitted);
  const JobStatus clean_status = wait_terminal(service, clean.id);
  EXPECT_EQ(clean_status.outcome, JobOutcome::Ok);
  const std::string clean_body = *service.result_body(clean.id);

  // Same spec with one injected mid-run crash: the retry resumes from the
  // crashed attempt's checkpoint and must land on the identical answer.
  SubmitRequest faulty = make_request(quickstart_text(), JobKind::Run);
  faulty.fault_crash_attempts = 1;
  const SubmitOutcome out = service.submit(faulty);
  ASSERT_TRUE(out.admitted);
  EXPECT_FALSE(out.cached);  // fault injection must bypass the cache
  const JobStatus status = wait_terminal(service, out.id);
  EXPECT_EQ(status.outcome, JobOutcome::Masked) << status.detail;
  EXPECT_EQ(status.attempts, 2);
  const std::string body = *service.result_body(out.id);
  EXPECT_EQ(json_field(body, "resumed"), "true");
  // Bit-identity across the crash/resume boundary (DESIGN.md §11).
  EXPECT_EQ(json_field(body, "signature"), json_field(clean_body, "signature"));
  EXPECT_EQ(json_field(body, "arch_hash"), json_field(clean_body, "arch_hash"));
  EXPECT_GE(service.stats().crashes, 1);
  EXPECT_GE(service.stats().retries, 1);
  service.stop(true);
}

TEST(ServeServiceTest, CrashBudgetExhaustedIsFailedHonest) {
  TempSpool spool("serve_test_budget");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.max_attempts = 2;
  Service service(cfg);
  SubmitRequest req = make_request(quickstart_text(), JobKind::Run);
  req.fault_crash_attempts = 99;  // every attempt dies
  const SubmitOutcome out = service.submit(req);
  ASSERT_TRUE(out.admitted);
  const JobStatus status = wait_terminal(service, out.id);
  EXPECT_EQ(status.outcome, JobOutcome::FailedHonest);
  EXPECT_EQ(status.attempts, 2);
  const auto body = service.result_body(out.id);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(json_field(*body, "error_class"), "crash-budget");
  EXPECT_EQ(service.stats().crashes, 2);
  EXPECT_EQ(service.stats().failed_honest, 1);
  service.stop(true);
}

TEST(ServeServiceTest, WatchdogReapsHungWorker) {
  TempSpool spool("serve_test_watchdog");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.max_attempts = 1;
  cfg.attempt_timeout_ms = 200;
  cfg.term_grace_ms = 100;
  Service service(cfg);
  SubmitRequest req = make_request(quickstart_text(), JobKind::Run);
  req.fault_hang_attempts = 99;
  const SubmitOutcome out = service.submit(req);
  ASSERT_TRUE(out.admitted);
  const JobStatus status = wait_terminal(service, out.id, 30000);
  EXPECT_EQ(status.outcome, JobOutcome::FailedHonest);
  EXPECT_NE(status.detail.find("watchdog"), std::string::npos);
  EXPECT_GE(service.stats().watchdog_kills, 1);
  service.stop(true);
}

// --- telemetry: flight-recorder forensics & merged job traces ---------------

TEST(ServeServiceTest, WatchdogKillLeavesFlightEvidenceInHistory) {
  TempSpool spool("serve_test_flight");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.max_attempts = 1;
  cfg.attempt_timeout_ms = 300;
  cfg.term_grace_ms = 100;
  Service service(cfg);
  SubmitRequest req = make_request(quickstart_text(), JobKind::Run);
  req.fault_hang_attempts = 99;
  const SubmitOutcome out = service.submit(req);
  ASSERT_TRUE(out.admitted);
  const JobStatus status = wait_terminal(service, out.id, 30000);
  EXPECT_EQ(status.outcome, JobOutcome::FailedHonest);

  // The attempt history carries the flight-recorder forensics: the worker
  // was SIGKILLed inside its hang loop, and the ring (MAP_SHARED, written
  // back by the kernel) says so even though the process never exited
  // cleanly.
  ASSERT_EQ(status.history.size(), 1u);
  const AttemptRecord& rec = status.history[0];
  EXPECT_EQ(rec.attempt, 1);
  EXPECT_EQ(rec.fate, "watchdog");
  EXPECT_GE(rec.end_ms, rec.start_ms);
  ASSERT_GE(rec.crash_span_stack.size(), 2u);
  EXPECT_EQ(rec.crash_span_stack.front(), "serve.worker.attempt");
  EXPECT_EQ(rec.crash_span_stack.back(), "serve.worker.hang");
  bool saw_attempt_counter = false;
  for (const auto& [name, value] : rec.crash_counters)
    if (name == "serve.worker.attempts") {
      saw_attempt_counter = true;
      EXPECT_EQ(value, 1);
    }
  EXPECT_TRUE(saw_attempt_counter);

  // The same evidence rides the STATUS JSON envelope (crusade status --json).
  const std::string json = to_json(status);
  EXPECT_NE(json.find("\"fate\":\"watchdog\""), std::string::npos) << json;
  EXPECT_NE(json.find("serve.worker.hang"), std::string::npos) << json;
  service.stop(true);
}

TEST(ServeServiceTest, CrashRetriedJobYieldsOneMergedTrace) {
  TempSpool spool("serve_test_trace");
  Service service(fast_config(spool.path));
  SubmitRequest req = make_request(quickstart_text(), JobKind::Run);
  req.fault_crash_attempts = 1;
  const SubmitOutcome out = service.submit(req);
  ASSERT_TRUE(out.admitted);
  const JobStatus status = wait_terminal(service, out.id);
  ASSERT_EQ(status.outcome, JobOutcome::Masked) << status.detail;
  ASSERT_EQ(status.attempts, 2);

  const auto trace = service.job_trace_json(out.id);
  ASSERT_TRUE(trace.has_value());
  // One timeline, three process rows: the daemon plus both worker attempts
  // — the crashed first attempt reconstructed from its flight ring, the
  // successful second from its serialized trace file.
  EXPECT_NE(trace->find("\"name\":\"serve.queue_wait\""), std::string::npos);
  EXPECT_NE(trace->find("\"name\":\"serve.attempt\""), std::string::npos);
  EXPECT_NE(trace->find("\"name\":\"serve.retry_backoff\""),
            std::string::npos);
  EXPECT_NE(trace->find("\"pid\":1001"), std::string::npos) << *trace;
  EXPECT_NE(trace->find("\"pid\":1002"), std::string::npos) << *trace;
  EXPECT_NE(trace->find("serve.worker.attempt"), std::string::npos);
  EXPECT_NE(trace->find("\"trace_id\""), std::string::npos);
  // Structurally sound JSON: balanced braces/brackets (the daemon smoke in
  // check.sh validates the full Chrome schema with a real parser).
  long depth = 0;
  for (const char c : *trace) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);

  // Unknown ids answer nullopt, mirroring STATUS.
  EXPECT_FALSE(service.job_trace_json(424242).has_value());

  // The daemon-side histograms saw this job: one queue wait, one run, one
  // end-to-end completion, and the stats JSON embeds their percentiles.
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queue_wait_us.total(), 1u);
  EXPECT_EQ(stats.run_us.total(), 1u);
  EXPECT_EQ(stats.e2e_us.total(), 1u);
  EXPECT_GE(stats.e2e_us.max(), stats.run_us.max());
  const std::string stats_json = to_json(stats);
  EXPECT_NE(stats_json.find("\"queue_wait_us\":{\"count\":1"),
            std::string::npos) << stats_json;
  EXPECT_NE(stats_json.find("\"e2e_us\""), std::string::npos);
  service.stop(true);
}

// --- result cache ----------------------------------------------------------

TEST(ServeServiceTest, CacheHitReturnsBitIdenticalBytesInstantly) {
  TempSpool spool("serve_test_cache");
  Service service(fast_config(spool.path));
  const SubmitOutcome first =
      service.submit(make_request(quickstart_text(), JobKind::Run));
  ASSERT_TRUE(first.admitted);
  wait_terminal(service, first.id);
  const std::string original = *service.result_body(first.id);

  const SubmitOutcome second =
      service.submit(make_request(quickstart_text(), JobKind::Run));
  ASSERT_TRUE(second.admitted);
  EXPECT_TRUE(second.cached);
  const JobStatus status = wait_terminal(service, second.id, 1000);
  EXPECT_EQ(status.outcome, JobOutcome::Ok);
  EXPECT_TRUE(status.cached);
  EXPECT_EQ(status.attempts, 0);  // nothing ran
  EXPECT_EQ(*service.result_body(second.id), original);  // byte-identical
  EXPECT_EQ(service.stats().cache_hits, 1);

  // Different kind, same spec: a different key — no false sharing.
  const SubmitOutcome survive = service.submit(
      make_request(quickstart_text(), JobKind::Validate));
  ASSERT_TRUE(survive.admitted);
  EXPECT_FALSE(survive.cached);
  wait_terminal(service, survive.id);
  service.stop(true);
}

TEST(ServeServiceTest, CachePersistsAcrossRestart) {
  TempSpool spool("serve_test_cache_restart");
  std::string original;
  {
    Service service(fast_config(spool.path));
    const SubmitOutcome first =
        service.submit(make_request(quickstart_text(), JobKind::Run));
    ASSERT_TRUE(first.admitted);
    wait_terminal(service, first.id);
    original = *service.result_body(first.id);
    service.stop(true);
  }
  // A fresh incarnation on the same spool serves the hit from disk.
  Service service(fast_config(spool.path));
  const SubmitOutcome again =
      service.submit(make_request(quickstart_text(), JobKind::Run));
  ASSERT_TRUE(again.admitted);
  EXPECT_TRUE(again.cached);
  EXPECT_EQ(*service.result_body(again.id), original);
  service.stop(true);
}

// --- restart recovery ------------------------------------------------------

TEST(ServeServiceTest, QueuedJobsSurviveHardStopAndRecover) {
  TempSpool spool("serve_test_recover");
  std::vector<std::uint64_t> ids;
  {
    ServiceConfig cfg = fast_config(spool.path);
    cfg.start_paused = true;  // nothing runs; everything stays spooled
    Service service(cfg);
    for (int i = 0; i < 3; ++i) {
      SubmitRequest req = make_request(quickstart_text(), JobKind::Lint);
      req.spec_text += "\n# job " + std::to_string(i) + "\n";
      const SubmitOutcome out = service.submit(req);
      ASSERT_TRUE(out.admitted);
      ids.push_back(out.id);
    }
    service.stop(false);  // hard stop: park the queue in the spool
  }
  Service service(fast_config(spool.path));
  EXPECT_EQ(service.recovered_jobs(), 3);
  for (const std::uint64_t id : ids) {
    const JobStatus status = wait_terminal(service, id);
    EXPECT_EQ(status.outcome, JobOutcome::Ok);
    EXPECT_TRUE(status.recovered);
  }
  service.stop(true);  // join workers so every spool cleanup has landed
  // Everything terminal: the spool owes the next incarnation nothing.
  Service empty(fast_config(spool.path));
  EXPECT_EQ(empty.recovered_jobs(), 0);
  empty.stop(true);
}

TEST(ServeServiceTest, CorruptSpoolEntryQuarantinedNotFatal) {
  TempSpool spool("serve_test_corrupt");
  {
    Service service(fast_config(spool.path));
    service.stop(true);
  }
  std::ofstream(spool.path + "/jobs/7.job") << "JOB id=7 body=9999\nshort";
  Service service(fast_config(spool.path));
  EXPECT_EQ(service.recovered_jobs(), 0);
  // Still fully operational.
  const SubmitOutcome out =
      service.submit(make_request(quickstart_text(), JobKind::Lint));
  EXPECT_TRUE(out.admitted);
  wait_terminal(service, out.id);
  service.stop(true);
}

// --- graceful shutdown -----------------------------------------------------

TEST(ServeServiceTest, DrainStopCompletesEveryAdmittedJob) {
  TempSpool spool("serve_test_drain");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.start_paused = true;
  Service service(cfg);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    SubmitRequest req = make_request(quickstart_text(), JobKind::Lint);
    req.spec_text += "\n# drain " + std::to_string(i) + "\n";
    const SubmitOutcome out = service.submit(req);
    ASSERT_TRUE(out.admitted);
    ids.push_back(out.id);
  }
  service.resume_workers();
  service.stop(true);  // drain: blocks until the queue is empty
  for (const std::uint64_t id : ids) {
    const auto status = service.status(id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, JobState::Done);
    EXPECT_EQ(status->outcome, JobOutcome::Ok);
  }
  // Draining honoured the admission promise; nothing parked, nothing lost.
  EXPECT_EQ(service.stats().finished, 6);
}

TEST(ServeServiceTest, SubmitAfterStopIsRejectedAsShuttingDown) {
  TempSpool spool("serve_test_shut");
  Service service(fast_config(spool.path));
  service.stop(true);
  const SubmitOutcome out =
      service.submit(make_request(quickstart_text(), JobKind::Lint));
  EXPECT_FALSE(out.admitted);
  EXPECT_TRUE(out.shutting_down);
}

// --- the 100-job mixed crash campaign (acceptance criteria) ----------------

TEST(ServeServiceTest, HundredJobCampaignZeroLostZeroDuplicated) {
  TempSpool spool("serve_test_campaign");
  ServiceConfig cfg = fast_config(spool.path);
  cfg.workers = 4;
  cfg.queue_capacity = 128;
  cfg.term_grace_ms = 200;
  cfg.attempt_timeout_ms = 30000;
  Service service(cfg);

  constexpr int kJobs = 100;
  std::vector<std::uint64_t> ids;
  std::set<std::uint64_t> unique_ids;
  int expect_crashers = 0;
  for (int i = 0; i < kJobs; ++i) {
    SubmitRequest req;
    switch (i % 5) {
      case 0: req.kind = JobKind::Run; break;
      case 1: req.kind = JobKind::Lint; break;
      case 2: req.kind = JobKind::Validate; break;
      case 3: req.kind = JobKind::Run; break;
      case 4:
        req.kind = (i % 25 == 4) ? JobKind::Survive : JobKind::Run;
        req.survive_seeds = 3;
        break;
    }
    req.spec_text = quickstart_text() + "\n# campaign job " +
                    std::to_string(i) + "\n";
    req.priority = i % 3;
    if (i % 5 == 3) {
      req.fault_crash_attempts = 1;  // injected worker crash
      ++expect_crashers;
    }
    if (i % 10 == 7) req.deadline_ms = 1 + i % 5;  // short deadlines
    const SubmitOutcome out = service.submit(req);
    ASSERT_TRUE(out.admitted) << "job " << i << ": " << out.error;
    ids.push_back(out.id);
    unique_ids.insert(out.id);
  }
  ASSERT_EQ(unique_ids.size(), ids.size());  // zero duplicated

  int ok = 0, masked = 0, degraded = 0, failed = 0, cancelled = 0;
  for (const std::uint64_t id : ids) {
    const JobStatus status = wait_terminal(service, id, 120000);
    ASSERT_EQ(status.state, JobState::Done);      // zero lost
    ASSERT_NE(status.outcome, JobOutcome::None);  // every end is honest
    switch (status.outcome) {
      case JobOutcome::Ok: ++ok; break;
      case JobOutcome::Masked: ++masked; break;
      case JobOutcome::DegradedHonest: ++degraded; break;
      case JobOutcome::FailedHonest: ++failed; break;
      case JobOutcome::Cancelled: ++cancelled; break;
      case JobOutcome::None: break;
    }
    // Terminal jobs always carry a result body.
    EXPECT_TRUE(service.result_body(id).has_value());
  }
  service.stop(true);

  EXPECT_EQ(ok + masked + degraded + failed + cancelled, kJobs);
  EXPECT_EQ(cancelled, 0);           // nobody cancelled anything
  EXPECT_EQ(failed, 0);              // every crash was masked within budget
  EXPECT_GE(masked, expect_crashers / 2);  // crash injection really fired
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.finished, kJobs);
  EXPECT_GE(stats.crashes, expect_crashers);
  EXPECT_GE(stats.retries, expect_crashers);
}

// --- daemon + client over the socket ---------------------------------------

TEST(ServeDaemonTest, SocketEndToEnd) {
  TempSpool spool("serve_test_daemon");
  const std::string socket_path =
      spool.path + ".sock";  // short path (AF_UNIX limit)
  DaemonConfig cfg;
  cfg.socket_path = socket_path;
  cfg.service = fast_config(spool.path);
  Daemon daemon(cfg);
  std::thread runner([&daemon] { daemon.run(); });

  Client client(socket_path);
  ASSERT_TRUE(client.ping());

  // Submit-and-wait round trip.
  SubmitRequest submit = make_request(quickstart_text(), JobKind::Run);
  Request wire = make_submit_request(submit);
  wire.fields["wait_ms"] = "60000";
  const Response done = client.call(wire);
  ASSERT_TRUE(done.ok) << done.body;
  EXPECT_EQ(json_field(done.body, "outcome"), "ok");
  const std::string id = json_field(done.body, "id");
  ASSERT_FALSE(id.empty());

  // STATUS/RESULT agree with the submit reply.
  Request status_req;
  status_req.verb = "STATUS";
  status_req.fields["id"] = id;
  const Response status = client.call(status_req);
  ASSERT_TRUE(status.ok);
  EXPECT_EQ(json_field(status.body, "state"), "done");

  Request result_req;
  result_req.verb = "RESULT";
  result_req.fields["id"] = id;
  const Response result = client.call(result_req);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(json_field(result.body, "outcome"), "ok");

  // Unknown ids and verbs earn typed errors, not hangs or disconnects.
  Request missing;
  missing.verb = "RESULT";
  missing.fields["id"] = "999999";
  const Response not_found = client.call(missing);
  EXPECT_FALSE(not_found.ok);
  EXPECT_EQ(not_found.code, "not-found");

  Request bogus;
  bogus.verb = "FROBNICATE";
  const Response bad = client.call(bogus);
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.code, "bad-request");

  // Cached resubmission over the wire is byte-identical.
  const Response cached = client.call(wire);
  ASSERT_TRUE(cached.ok);
  EXPECT_EQ(json_field(cached.body, "cached"), "true");
  EXPECT_EQ(json_field(cached.body, "result"),
            json_field(done.body, "result"));

  Request shutdown;
  shutdown.verb = "SHUTDOWN";
  const Response stopping = client.call(shutdown);
  EXPECT_TRUE(stopping.ok);
  runner.join();
  EXPECT_FALSE(client.ping());  // socket gone after shutdown
}

TEST(ServeDaemonTest, SecondDaemonOnLiveSocketRefused) {
  TempSpool spool("serve_test_daemon2");
  DaemonConfig cfg;
  cfg.socket_path = spool.path + ".sock";
  cfg.service = fast_config(spool.path);
  Daemon daemon(cfg);
  std::thread runner([&daemon] { daemon.run(); });
  Client client(cfg.socket_path);
  ASSERT_TRUE(client.ping());

  DaemonConfig rival = cfg;
  rival.service.spool_dir = spool.path + ".rival";
  EXPECT_THROW({ Daemon second(rival); }, Error);
  std::system(("rm -rf " + rival.service.spool_dir).c_str());

  daemon.request_shutdown(true);
  runner.join();

  // A stale socket file from a dead daemon is reclaimed, not fatal.
  std::ofstream(cfg.socket_path) << "";
  Daemon reborn(cfg);
  std::thread runner2([&reborn] { reborn.run(); });
  EXPECT_TRUE(client.ping());
  reborn.request_shutdown(true);
  runner2.join();
}

}  // namespace
}  // namespace crusade::serve
