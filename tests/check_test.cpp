// crusade-check (analyze/source_check.hpp): per-rule fixtures proving each
// rule fires on violating code, stays silent on the fixed form, and honors
// reasoned check-allow suppressions — plus a whole-tree run pinning the
// repo's own suppression count so new silences can't slip in unreviewed.
#include <gtest/gtest.h>

#include <string>

#include "analyze/source_check.hpp"

namespace crusade {
namespace {

// --- catalog ----------------------------------------------------------------

TEST(CheckRules, CatalogIsStableAndDocumented) {
  const auto& rules = check_rule_catalog();
  ASSERT_EQ(rules.size(), 10u);
  EXPECT_STREQ(rules[0].id, "C000");
  EXPECT_STREQ(rules[7].id, "C007");
  EXPECT_STREQ(rules[8].id, "C008");
  EXPECT_STREQ(rules[9].id, "C009");
  for (const CheckRule& rule : rules) {
    EXPECT_NE(std::string(rule.name), "");
    EXPECT_GT(std::string(rule.rationale).size(), 20u) << rule.id;
  }
}

// --- C001: unordered iteration in decision code -----------------------------

TEST(CheckRules, C001FiresOnUnorderedRangeFor) {
  const std::string bad =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> scores;\n"
      "int total() {\n"
      "  int t = 0;\n"
      "  for (const auto& [k, v] : scores) t += v;\n"
      "  return t;\n"
      "}\n";
  const auto report = check_source("src/alloc/pick.cpp", bad);
  EXPECT_EQ(report.count_id("C001"), 1);
  EXPECT_EQ(report.findings[0].line, 5);
}

TEST(CheckRules, C001FiresOnExplicitBegin) {
  const std::string bad =
      "std::unordered_set<int> seen;\n"
      "auto it = seen.begin();\n";
  EXPECT_EQ(check_source("src/sched/x.cpp", bad).count_id("C001"), 1);
}

TEST(CheckRules, C001SilentOnOrderedMapAndKeyedLookup) {
  const std::string good =
      "std::map<int, int> scores;\n"
      "std::unordered_map<int, int> cache;\n"
      "int f(int k) {\n"
      "  for (const auto& [a, b] : scores) (void)b;\n"  // ordered: fine
      "  auto it = cache.find(k);\n"                    // keyed lookup: fine
      "  return it == cache.end() ? 0 : it->second;\n"
      "}\n";
  EXPECT_EQ(check_source("src/alloc/pick.cpp", good).count_id("C001"), 0);
}

TEST(CheckRules, C001ScopedToDecisionDirs) {
  const std::string bad =
      "std::unordered_map<int, int> m;\n"
      "void f() { for (auto& kv : m) (void)kv; }\n";
  EXPECT_EQ(check_source("src/alloc/a.cpp", bad).count_id("C001"), 1);
  EXPECT_EQ(check_source("src/ckpt/a.cpp", bad).count_id("C001"), 1);
  // serve/ may iterate unordered state it never folds into answers.
  EXPECT_EQ(check_source("src/serve/a.cpp", bad).count_id("C001"), 0);
  EXPECT_EQ(check_source("tests/a.cpp", bad).count_id("C001"), 0);
}

// --- C002: wall clock / libc randomness -------------------------------------

TEST(CheckRules, C002FiresOnSystemClockAndRand) {
  const std::string bad =
      "auto t = std::chrono::system_clock::now();\n"
      "int r = rand() % 6;\n"
      "std::random_device rd;\n";
  const auto report = check_source("src/core/x.cpp", bad);
  EXPECT_EQ(report.count_id("C002"), 3);
}

TEST(CheckRules, C002SilentOnSteadyClockAndSeededRng) {
  const std::string good =
      "auto t = std::chrono::steady_clock::now();\n"
      "util::Rng rng(seed);\n"
      "int r = rng.next_int(6);\n"
      "int grand_total = grand(x);\n";  // 'rand' inside an identifier
  EXPECT_EQ(check_source("src/core/x.cpp", good).count_id("C002"), 0);
}

TEST(CheckRules, C002ExemptsTimingCode) {
  const std::string timing = "auto t = std::chrono::system_clock::now();\n";
  EXPECT_EQ(check_source("src/obs/obs.cpp", timing).count_id("C002"), 0);
  EXPECT_EQ(check_source("src/serve/service.cpp", timing).count_id("C002"),
            0);
  EXPECT_EQ(check_source("src/core/crusade.cpp", timing).count_id("C002"), 1);
}

// --- C003: raw file writes --------------------------------------------------

TEST(CheckRules, C003FiresOnOfstreamAndFopen) {
  const std::string bad =
      "std::ofstream out(path);\n"
      "FILE* f = fopen(path.c_str(), \"w\");\n";
  EXPECT_EQ(check_source("src/ckpt/x.cpp", bad).count_id("C003"), 2);
}

TEST(CheckRules, C003SilentOnAtomicWriteAndReads) {
  const std::string good =
      "atomic_write_file(path, body);\n"
      "std::ifstream in(path);\n";
  EXPECT_EQ(check_source("src/ckpt/x.cpp", good).count_id("C003"), 0);
}

TEST(CheckRules, C003ExemptsAtomicFileImpl) {
  const std::string impl = "FILE* f = fopen(tmp.c_str(), \"w\");\n";
  EXPECT_EQ(check_source("src/util/atomic_file.cpp", impl).count_id("C003"),
            0);
  EXPECT_EQ(check_source("src/util/other.cpp", impl).count_id("C003"), 1);
}

// --- C004: exit / stdio in library code -------------------------------------

TEST(CheckRules, C004FiresOnExitAndStdio) {
  const std::string bad =
      "if (broken) exit(1);\n"
      "std::cerr << \"oops\";\n"
      "printf(\"%d\", x);\n";
  EXPECT_EQ(check_source("src/core/x.cpp", bad).count_id("C004"), 3);
}

TEST(CheckRules, C004SilentOnUnderscoreExitAndSnprintf) {
  // ::_exit is the sanctioned forked-child exit; snprintf writes memory.
  const std::string good =
      "::_exit(99);\n"
      "std::snprintf(buf, sizeof buf, \"%d\", x);\n"
      "throw Error(\"honest failure\");\n";
  EXPECT_EQ(check_source("src/serve/worker.cpp", good).count_id("C004"), 0);
}

TEST(CheckRules, C004ScopedToLibraryCode) {
  const std::string cli = "printf(\"usage: crusade ...\");\n";
  EXPECT_EQ(check_source("tools/crusade_cli.cpp", cli).count_id("C004"), 0);
  EXPECT_EQ(check_source("src/core/x.cpp", cli).count_id("C004"), 1);
}

// --- C005: naked detach -----------------------------------------------------

TEST(CheckRules, C005FiresOnDetachAnywhere) {
  const std::string bad = "std::thread([]{ work(); }).detach();\n";
  EXPECT_EQ(check_source("src/serve/x.cpp", bad).count_id("C005"), 1);
  EXPECT_EQ(check_source("tools/x.cpp", bad).count_id("C005"), 1);
}

TEST(CheckRules, C005SilentOnJoin) {
  const std::string good = "worker.join();\n";
  EXPECT_EQ(check_source("src/serve/x.cpp", good).count_id("C005"), 0);
}

// --- C006: signal-handler async-signal-safety -------------------------------

TEST(CheckRules, C006FiresOnUnsafeHandlerCall) {
  const std::string bad =
      "void on_term(int) {\n"
      "  std::fprintf(stderr, \"stopping\\n\");\n"
      "  log_shutdown();\n"
      "}\n"
      "void install() { signal(SIGTERM, on_term); }\n";
  const auto report = check_source("src/serve/x.cpp", bad);
  EXPECT_EQ(report.count_id("C006"), 2);  // fprintf + log_shutdown
}

TEST(CheckRules, C006SilentOnStopHubPattern) {
  // The repo's sanctioned handler: StopHub::notify() (atomic stores only).
  const std::string good =
      "void on_term(int sig) {\n"
      "  StopHub::instance().notify();\n"
      "  g_last.store(sig);\n"
      "}\n"
      "void install() { signal(SIGTERM, on_term); }\n"
      "void helper() { open_log_file(); }\n";  // not a handler: unchecked
  EXPECT_EQ(check_source("src/serve/x.cpp", good).count_id("C006"), 0);
}

TEST(CheckRules, C006DetectsSigactionRegistration) {
  const std::string bad =
      "void on_term(int) { malloc(32); }\n"
      "void install() {\n"
      "  struct sigaction sa{};\n"
      "  sa.sa_handler = on_term;\n"
      "}\n";
  EXPECT_EQ(check_source("src/util/x.cpp", bad).count_id("C006"), 1);
}

// --- C007: obs name taxonomy ------------------------------------------------

TEST(CheckRules, C007FiresOnUnknownSubsystemAndShapelessNames) {
  const std::string bad =
      "void f() {\n"
      "  obs::count(\"frobnicator.calls\");\n"   // unknown subsystem
      "  OBS_SPAN(\"setup\");\n"                 // no dot
      "  obs::record_peak(\"Serve.Depth\", d);\n"  // uppercase
      "}\n";
  const auto report = check_source("src/core/x.cpp", bad);
  EXPECT_EQ(report.count_id("C007"), 3) << report.summary();
}

TEST(CheckRules, C007SilentOnTaxonomyNames) {
  const std::string good =
      "void f() {\n"
      "  obs::count(\"serve.worker.attempts\");\n"
      "  OBS_SPAN(\"phase.allocation\");\n"
      "  obs::Span attempt(\"serve.worker.attempt\");\n"
      "  obs::record_peak(\"serve.queue_depth_peak\", d);\n"
      "}\n";
  EXPECT_EQ(check_source("src/serve/x.cpp", good).count_id("C007"), 0);
}

TEST(CheckRules, C007IgnoresCommentsAndNonSrcFiles) {
  const std::string comment_only =
      "// example: obs::count(\"bogus-name\") would be rejected\n";
  EXPECT_EQ(check_source("src/obs/x.cpp", comment_only).count_id("C007"), 0);
  const std::string bad = "obs::count(\"bogus\");\n";
  // tools/ and tests may fabricate names for fixtures; the taxonomy is a
  // contract on the library's own telemetry.
  EXPECT_EQ(check_source("tools/x.cpp", bad).count_id("C007"), 0);
  EXPECT_EQ(check_source("src/ft/x.cpp", bad).count_id("C007"), 1);
}

// --- C008: unchecked durability-syscall returns -----------------------------

TEST(CheckRules, C008FiresOnDiscardedCloseAndFsync) {
  const std::string bad =
      "void f(int fd, const std::string& a, const std::string& b) {\n"
      "  fsync(fd);\n"
      "  ::close(fd);\n"
      "  rename(a.c_str(), b.c_str());\n"
      "}\n";
  const auto report = check_source("src/util/x.cpp", bad);
  EXPECT_EQ(report.count_id("C008"), 3) << report.summary();
}

TEST(CheckRules, C008FiresOnErrnoAfterSameLineClose) {
  // close() completed (statement position), then errno is read: the
  // original failure's errno is gone.
  const std::string bad =
      "void f(int fd) {\n"
      "  (void)::close(fd); throw_io_error(\"write\", errno);\n"
      "}\n";
  EXPECT_EQ(check_source("src/serve/x.cpp", bad).count_id("C008"), 1);
}

TEST(CheckRules, C008SilentOnCheckedAndVoidCastForms) {
  const std::string good =
      "void f(int fd, const std::string& a, const std::string& b) {\n"
      "  if (::fsync(fd) != 0) throw_io_error(\"fsync\", errno);\n"
      "  const int rc = ::close(fd);\n"
      "  (void)::close(rc);\n"  // deliberate best-effort discard
      "  if (::rename(a.c_str(), b.c_str()) != 0)\n"
      "    throw_io_error(\"rename\", errno);\n"
      "  const int e = errno;\n"  // captured before cleanup: fine
      "  (void)::unlink(a.c_str());\n"
      "}\n";
  const auto report = check_source("src/util/x.cpp", good);
  EXPECT_EQ(report.count_id("C008"), 0) << report.summary();
}

TEST(CheckRules, C008ScopedToLibraryCodeAndHonorsAllow) {
  const std::string bad = "void f(int fd) {\n  close(fd);\n}\n";
  EXPECT_EQ(check_source("tools/x.cpp", bad).count_id("C008"), 0);
  EXPECT_EQ(check_source("src/obs/x.cpp", bad).count_id("C008"), 1);
  const std::string allowed =
      "void f(int fd) {\n"
      "  // check-allow(C008): fd is read-only, close cannot lose data\n"
      "  close(fd);\n"
      "}\n";
  const auto report = check_source("src/obs/x.cpp", allowed);
  EXPECT_EQ(report.errors(), 0) << report.summary();
  EXPECT_EQ(report.suppressions(), 1);
}

// --- C009: unframed durable writes in serve/ckpt ----------------------------

TEST(CheckRules, C009FiresOnBareAtomicWriteInDurableCode) {
  const std::string bad =
      "void f(const std::string& path, const std::string& body) {\n"
      "  atomic_write_file(path, body);\n"
      "}\n";
  EXPECT_EQ(check_source("src/serve/x.cpp", bad).count_id("C009"), 1);
  EXPECT_EQ(check_source("src/ckpt/x.cpp", bad).count_id("C009"), 1);
}

TEST(CheckRules, C009SilentOnFramedWriterAndOutsideScope) {
  const std::string framed =
      "void f(const std::string& path, const std::string& body) {\n"
      "  diskfmt::write_framed_file(path, kMagic, 1, body);\n"
      "}\n";
  EXPECT_EQ(check_source("src/serve/x.cpp", framed).count_id("C009"), 0);
  // Outside the durable-format subsystems the raw helper stays legal.
  const std::string bare =
      "void f(const std::string& path, const std::string& body) {\n"
      "  atomic_write_file(path, body);\n"
      "}\n";
  EXPECT_EQ(check_source("src/util/x.cpp", bare).count_id("C009"), 0);
  EXPECT_EQ(check_source("tools/x.cpp", bare).count_id("C009"), 0);
  // Comment mentions never fire — only code lines do.
  const std::string comment =
      "// journal is written via atomic_write_file(path, body)\n"
      "void f() {}\n";
  EXPECT_EQ(check_source("src/serve/x.cpp", comment).count_id("C009"), 0);
}

TEST(CheckRules, C009HonorsReasonedAllow) {
  const std::string allowed =
      "void f(const std::string& path, const std::string& body) {\n"
      "  // check-allow(C009): debug dump, never re-read after a crash\n"
      "  atomic_write_file(path, body);\n"
      "}\n";
  const auto report = check_source("src/ckpt/x.cpp", allowed);
  EXPECT_EQ(report.errors(), 0) << report.summary();
  EXPECT_EQ(report.suppressions(), 1);
}

// --- suppressions and C000 --------------------------------------------------

TEST(CheckSuppressions, ReasonedAllowSilencesSameLine) {
  const std::string code =
      "printf(\"debug\");  // check-allow(C004): env-gated debug aid\n";
  const auto report = check_source("src/core/x.cpp", code);
  EXPECT_EQ(report.errors(), 0);
  EXPECT_EQ(report.suppressions(), 1);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_TRUE(report.findings[0].suppressed);
  EXPECT_EQ(report.findings[0].reason, "env-gated debug aid");
}

TEST(CheckSuppressions, ReasonedAllowSilencesNextLine) {
  const std::string code =
      "// check-allow(C004): env-gated debug aid\n"
      "printf(\"debug\");\n";
  const auto report = check_source("src/core/x.cpp", code);
  EXPECT_EQ(report.errors(), 0);
  EXPECT_EQ(report.suppressions(), 1);
}

TEST(CheckSuppressions, AllowDoesNotLeakPastItsLine) {
  const std::string code =
      "// check-allow(C004): only covers the next line\n"
      "printf(\"one\");\n"
      "printf(\"two\");\n";
  const auto report = check_source("src/core/x.cpp", code);
  EXPECT_EQ(report.errors(), 1);  // the second printf is NOT covered
  EXPECT_EQ(report.suppressions(), 1);
}

TEST(CheckSuppressions, AllowForOtherRuleDoesNotApply) {
  const std::string code =
      "printf(\"debug\");  // check-allow(C003): wrong rule\n";
  const auto report = check_source("src/core/x.cpp", code);
  EXPECT_EQ(report.count_id("C004"), 1);  // still an error
}

TEST(CheckSuppressions, ReasonlessAllowIsC000) {
  const std::string code = "printf(\"x\");  // check-allow(C004)\n";
  const auto report = check_source("src/core/x.cpp", code);
  EXPECT_EQ(report.count_id("C000"), 1);
  EXPECT_EQ(report.count_id("C004"), 1);  // and it does not suppress
}

TEST(CheckSuppressions, UnknownRuleAllowIsC000) {
  const std::string code = "int x;  // check-allow(C999): no such rule\n";
  EXPECT_EQ(check_source("src/core/x.cpp", code).count_id("C000"), 1);
}

// --- stripping: rules never fire inside comments or strings -----------------

TEST(CheckStripping, CommentsAndStringsAreInvisible) {
  const std::string code =
      "// printf(\"in a comment\"); exit(1);\n"
      "/* std::cerr << rand(); */\n"
      "const char* s = \"printf( exit( .detach()\";\n"
      "const char* r = R\"(std::cout << rand())\";\n";
  const auto report = check_source("src/core/x.cpp", code);
  EXPECT_EQ(report.errors(), 0) << report.summary();
}

TEST(CheckStripping, LineNumbersSurviveBlockComments) {
  const std::string code =
      "/* a\n"
      "   multi-line\n"
      "   comment */\n"
      "exit(1);\n";
  const auto report = check_source("src/core/x.cpp", code);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].line, 4);
}

// --- report plumbing --------------------------------------------------------

TEST(CheckReportTest, JsonCarriesCountsAndCatalog) {
  const std::string code =
      "exit(1);\n"
      "printf(\"x\");  // check-allow(C004): fixture\n";
  const auto report = check_source("src/core/x.cpp", code);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"tool\":\"crusade-check\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"C006\""), std::string::npos);  // catalog
}

// --- the repo checks itself -------------------------------------------------

TEST(CheckTree, RepoIsCleanWithPinnedSuppressions) {
  const CheckReport report = check_tree(".");
  EXPECT_GT(report.files_scanned, 80);
  EXPECT_EQ(report.errors(), 0) << report.summary();
  // Every current suppression is a C004 on an env-gated debug fprintf in
  // sched/alloc.  A new suppression anywhere must be reviewed: it shows up
  // here as a count change.
  EXPECT_EQ(report.suppressions(), 7);
  for (const CheckFinding& f : report.findings) {
    if (!f.suppressed) continue;
    EXPECT_EQ(f.id, "C004") << f.file;
    EXPECT_NE(f.reason.find("debug aid"), std::string::npos) << f.file;
  }
}

}  // namespace
}  // namespace crusade
