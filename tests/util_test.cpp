// Unit tests for util: periodic-interval math (against brute force), RNG,
// integer math and the table formatter.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdlib>

#include <set>
#include <utility>
#include <string>
#include <vector>

#include "util/atomic_file.hpp"
#include "util/error.hpp"
#include "util/io_faults.hpp"
#include "util/math.hpp"
#include "util/periodic.hpp"
#include "util/run_control.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace crusade {
namespace {

// --- periodic windows ---

/// Brute-force overlap over explicit instances within lcm(Pa, Pb).
bool brute_force_overlap(const PeriodicWindow& a, const PeriodicWindow& b) {
  if (a.empty() || b.empty()) return false;
  const TimeNs pa = a.period > 0 ? a.period : 0;
  const TimeNs pb = b.period > 0 ? b.period : 0;
  const TimeNs horizon =
      pa > 0 && pb > 0 ? lcm64(pa, pb) : std::max<TimeNs>(1'000'000, 1);
  auto instances = [&](const PeriodicWindow& w, TimeNs period,
                       std::vector<std::pair<TimeNs, TimeNs>>& out) {
    if (period == 0) {
      out.emplace_back(w.start, w.finish);
      return;
    }
    for (TimeNs k = -2 * horizon; k <= 2 * horizon; k += period)
      out.emplace_back(w.start + k, w.finish + k);
  };
  std::vector<std::pair<TimeNs, TimeNs>> ia, ib;
  instances(a, pa, ia);
  instances(b, pb, ib);
  for (const auto& [sa, fa] : ia)
    for (const auto& [sb, fb] : ib)
      if (sa < fb && sb < fa) return true;
  return false;
}

TEST(Periodic, EmptyWindowsNeverOverlap) {
  PeriodicWindow empty{10, 10, 100};
  PeriodicWindow busy{0, 50, 100};
  EXPECT_FALSE(periodic_overlap(empty, busy));
  EXPECT_FALSE(periodic_overlap(busy, empty));
}

TEST(Periodic, SamePeriodPlainIntervals) {
  PeriodicWindow a{0, 10, 100};
  EXPECT_TRUE(periodic_overlap(a, {5, 15, 100}));
  EXPECT_FALSE(periodic_overlap(a, {10, 20, 100}));  // half-open: no touch
  EXPECT_TRUE(periodic_overlap(a, {95, 105, 100}));  // wraps onto [0,5)
}

TEST(Periodic, HarmonicPeriods) {
  // 10-long window every 100 vs 10-long window every 50: the 50-periodic
  // window hits phase 0 and 50; only phase 20..30 stays clear of [0,10).
  PeriodicWindow slow{0, 10, 100};
  EXPECT_TRUE(periodic_overlap(slow, {5, 15, 50}));
  EXPECT_FALSE(periodic_overlap(slow, {20, 30, 50}));
}

TEST(Periodic, CoprimePeriodsAlwaysCollide) {
  // gcd(7, 11) = 1: any two non-empty windows eventually intersect.
  EXPECT_TRUE(periodic_overlap({0, 2, 7}, {3, 5, 11}));
}

TEST(Periodic, OneShotVsPeriodic) {
  PeriodicWindow once{95, 105, 0};
  EXPECT_TRUE(periodic_overlap(once, {0, 10, 100}));   // instance at 100
  EXPECT_FALSE(periodic_overlap(once, {10, 20, 100}));
  EXPECT_FALSE(periodic_overlap({0, 5, 0}, {5, 8, 0}));
  EXPECT_TRUE(periodic_overlap({0, 6, 0}, {5, 8, 0}));
}

TEST(Periodic, MatchesBruteForceOnGrid) {
  const TimeNs periods[] = {6, 10, 15, 30};
  int checked = 0;
  for (TimeNs pa : periods)
    for (TimeNs pb : periods)
      for (TimeNs sa = 0; sa < pa; sa += 2)
        for (TimeNs sb = 0; sb < pb; sb += 3)
          for (TimeNs la : {1, 3, 5}) {
            for (TimeNs lb : {1, 2, 4}) {
              PeriodicWindow a{sa, sa + la, pa};
              PeriodicWindow b{sb, sb + lb, pb};
              ASSERT_EQ(periodic_overlap(a, b), brute_force_overlap(a, b))
                  << "a=[" << sa << "," << sa + la << ")%" << pa << " b=["
                  << sb << "," << sb + lb << ")%" << pb;
              ++checked;
            }
          }
  EXPECT_GT(checked, 500);
}

TEST(Periodic, MinShiftResolvesConflict) {
  const PeriodicWindow b{0, 10, 50};
  PeriodicWindow a{5, 9, 100};
  ASSERT_TRUE(periodic_overlap(a, b));
  const TimeNs shift = min_shift_to_avoid(a, b);
  ASSERT_NE(shift, kNoTime);
  ASSERT_GT(shift, 0);
  a.start += shift;
  a.finish += shift;
  EXPECT_FALSE(periodic_overlap(a, b));
  // Minimality: shifting one less must still overlap.
  a.start -= 1;
  a.finish -= 1;
  EXPECT_TRUE(periodic_overlap(a, b));
}

TEST(Periodic, MinShiftZeroWhenAlreadyClear) {
  EXPECT_EQ(min_shift_to_avoid({20, 25, 50}, {0, 10, 50}), 0);
}

TEST(Periodic, MinShiftImpossibleWhenWindowsFillPeriod) {
  // Combined lengths exceed the gcd: no phase works.
  EXPECT_EQ(min_shift_to_avoid({0, 30, 50}, {0, 25, 50}), kNoTime);
}

TEST(Periodic, OverlapsAny) {
  std::vector<PeriodicWindow> set = {{0, 10, 100}, {50, 60, 100}};
  EXPECT_TRUE(overlaps_any({55, 58, 100}, set));
  EXPECT_FALSE(overlaps_any({20, 30, 100}, set));
}

// --- RNG ---

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, UniformIntInRange) {
  Rng rng(1);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(2);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(3);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 9000; ++i)
    ++counts[rng.weighted_index({1.0, 0.0, 2.0})];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 2.0, 0.3);
}

TEST(Rng, WeightedIndexRejectsAllZero) {
  Rng rng(4);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), Error);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(6);
  Rng child = a.fork();
  EXPECT_NE(a.next(), child.next());
}

// --- math ---

TEST(MathTest, Lcm) {
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(25'000, 1'000'000), 1'000'000);
  EXPECT_THROW(lcm64(0, 5), Error);
}

TEST(MathTest, LcmOverflowDetected) {
  EXPECT_THROW(lcm64(INT64_MAX - 1, INT64_MAX - 2), Error);
}

TEST(MathTest, Hyperperiod) {
  EXPECT_EQ(hyperperiod({25 * kMicrosecond, 100 * kMicrosecond, kMinute}),
            kMinute);
  EXPECT_THROW(hyperperiod({}), Error);
}

TEST(MathTest, FloorDivNegative) {
  EXPECT_EQ(floor_div(7, 3), 2);
  EXPECT_EQ(floor_div(-7, 3), -3);
  EXPECT_EQ(floor_div(-6, 3), -2);
}

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(ceil_div(7, 3), 3);
  EXPECT_EQ(ceil_div(6, 3), 2);
  EXPECT_EQ(ceil_div(0, 3), 0);
}

// --- table / formatting ---

TEST(TableTest, RendersAlignedColumns) {
  Table t({"A", "Bee"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string out = t.to_string("title");
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("| A   | Bee |"), std::string::npos);
  EXPECT_NE(out.find("| 333 | 4   |"), std::string::npos);
}

TEST(TableTest, RejectsArityMismatch) {
  Table t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TimeFormat, HumanReadable) {
  EXPECT_EQ(format_time(25 * kMicrosecond), "25us");
  EXPECT_EQ(format_time(kMinute), "60s");
  EXPECT_EQ(format_time(kNoTime), "-");
  EXPECT_EQ(format_time(1'500'000), "1.5ms");
}

// --- typed I/O errors (serve spool/cache hardening) ------------------------

TEST(IoErrorTest, CarriesErrnoAndClassifiesDiskFull) {
  EXPECT_TRUE(is_disk_full_errno(ENOSPC));
#ifdef EDQUOT
  EXPECT_TRUE(is_disk_full_errno(EDQUOT));
#endif
  EXPECT_FALSE(is_disk_full_errno(EACCES));
  EXPECT_FALSE(is_disk_full_errno(EIO));

  try {
    throw_io_error("spool write", ENOSPC);
    FAIL() << "throw_io_error returned";
  } catch (const DiskFullError& e) {
    EXPECT_EQ(e.error_number(), ENOSPC);
    EXPECT_NE(std::string(e.what()).find("spool write"), std::string::npos);
  }
  try {
    throw_io_error("spool write", EACCES);
    FAIL() << "throw_io_error returned";
  } catch (const DiskFullError&) {
    FAIL() << "EACCES misclassified as disk-full";
  } catch (const IoError& e) {
    EXPECT_EQ(e.error_number(), EACCES);
  }
  // DiskFullError remains catchable as the general classes.
  EXPECT_THROW(throw_io_error("x", ENOSPC), IoError);
  EXPECT_THROW(throw_io_error("x", ENOSPC), Error);
}

// --- iofault: the deterministic environment-fault seam ----------------------

std::vector<std::string> g_observed_injections;
void record_injection(const char* name) {
  g_observed_injections.push_back(name);
}

/// The plan is process-global and the EINTR burst is thread-local, so every
/// test starts from a drained, disarmed seam and leaves it that way.
class IoFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { drain(); }
  void TearDown() override {
    iofault::set_observer(nullptr);
    drain();
  }

  /// Flushes any EINTR-burst residue left on this thread by a previous
  /// armed sequence: with a negligible rate no new faults fire, but the
  /// burst path still drains (it runs before the roll).
  static void drain() {
    iofault::Plan p;
    p.seed = 1;
    p.rate = 1e-18;
    iofault::arm(p);
    char b;
    for (int i = 0; i < 4; ++i) (void)iofault::xread(-1, &b, 0);
    iofault::disarm();
    iofault::reset_counters();
  }

  /// Runs `n` xwrite calls against /dev/null and records (rc, errno) — the
  /// observable injection sequence.
  static std::vector<std::pair<long, int>> record_sequence(
      std::uint64_t seed, double rate, int n) {
    iofault::Plan p;
    p.seed = seed;
    p.rate = rate;
    iofault::arm(p);
    const int fd = ::open("/dev/null", O_WRONLY);
    EXPECT_GE(fd, 0);
    std::vector<std::pair<long, int>> out;
    const char buf[8] = {};
    for (int i = 0; i < n; ++i) {
      errno = 0;
      const long rc = static_cast<long>(iofault::xwrite(fd, buf, sizeof buf));
      out.emplace_back(rc, errno);
    }
    (void)::close(fd);
    iofault::disarm();
    return out;
  }
};

TEST_F(IoFaultTest, DisarmedWrappersPassThrough) {
  EXPECT_FALSE(iofault::armed());
  char tmpl[] = "/tmp/crusade_iofault_fXXXXXX";
  const int fd = ::mkstemp(tmpl);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(iofault::xwrite(fd, "abc", 3), 3);
  EXPECT_EQ(iofault::xfsync(fd), 0);
  EXPECT_EQ(iofault::xclose(fd), 0);
  EXPECT_EQ(iofault::counters().total, 0u);
  (void)::unlink(tmpl);
}

TEST_F(IoFaultTest, SameSeedSameCallOrderReplaysTheSameFaults) {
  const auto a = record_sequence(42, 0.5, 64);
  drain();  // burst residue from run 1 must not leak into run 2
  const auto b = record_sequence(42, 0.5, 64);
  EXPECT_EQ(a, b);
  // And the seed matters: a different seed gives a different storm.
  drain();
  const auto c = record_sequence(43, 0.5, 64);
  EXPECT_NE(a, c);
  // At rate 0.5 over 64 calls, some injections certainly fired.
  int faults = 0;
  for (const auto& [rc, err] : a)
    if (rc < 0 || rc == 4) ++faults;  // 4 = short write of an 8-byte buffer
  EXPECT_GT(faults, 0);
}

TEST_F(IoFaultTest, EintrBurstAlwaysLeavesRoomForProgress) {
  // Rate 1.0, EINTR only: the nastiest storm.  The burst guarantee (one
  // injection-free call after each burst) means a plain retry loop still
  // terminates.
  iofault::Plan p;
  p.seed = 7;
  p.rate = 1.0;
  p.kinds = 1u << static_cast<unsigned>(iofault::Kind::Eintr);
  iofault::arm(p);
  const int fd = ::open("/dev/null", O_RDONLY);
  ASSERT_GE(fd, 0);
  char buf[4];
  int tries = 0;
  long rc = -1;
  while (tries < 100) {
    ++tries;
    rc = static_cast<long>(iofault::xread(fd, buf, sizeof buf));
    if (rc >= 0 || errno != EINTR) break;
  }
  iofault::disarm();
  (void)::close(fd);
  EXPECT_EQ(rc, 0);       // /dev/null reads EOF — the call went through
  EXPECT_LE(tries, 5);    // burst of 3 + the guaranteed-clean call
  EXPECT_GE(iofault::counters().injected[static_cast<unsigned>(
                iofault::Kind::Eintr)],
            3u);
}

TEST_F(IoFaultTest, ArmFromEnvParsesSeedAndOptionalRate) {
  EXPECT_TRUE(iofault::arm_from_env("123"));
  EXPECT_TRUE(iofault::armed());
  iofault::disarm();
  EXPECT_TRUE(iofault::arm_from_env("123:0.5"));
  EXPECT_TRUE(iofault::armed());
  iofault::disarm();
  for (const char* bad : {"", "abc", "12:", "12:abc", "12:0", "12:-1",
                          "12:1.5", "12:0.5x", "12x"}) {
    EXPECT_FALSE(iofault::arm_from_env(bad)) << "'" << bad << "' accepted";
  }
  EXPECT_FALSE(iofault::arm_from_env(nullptr));
}

TEST_F(IoFaultTest, CountersAndObserverSeeEveryInjection) {
  g_observed_injections.clear();
  iofault::set_observer(record_injection);
  iofault::Plan p;
  p.seed = 9;
  p.rate = 1.0;
  p.kinds = 1u << static_cast<unsigned>(iofault::Kind::Enospc);
  iofault::arm(p);
  const int fd = ::open("/dev/null", O_WRONLY);
  ASSERT_GE(fd, 0);
  errno = 0;
  EXPECT_EQ(iofault::xwrite(fd, "abcd", 4), -1);
  EXPECT_EQ(errno, ENOSPC);
  iofault::disarm();
  (void)::close(fd);
  const auto counts = iofault::counters();
  EXPECT_EQ(counts.injected[static_cast<unsigned>(iofault::Kind::Enospc)],
            1u);
  EXPECT_EQ(counts.total, 1u);
  ASSERT_EQ(g_observed_injections.size(), 1u);
  EXPECT_EQ(g_observed_injections[0], "chaos.injected.enospc");
}

TEST_F(IoFaultTest, InjectedCloseFailureStillReleasesTheDescriptor) {
  iofault::Plan p;
  p.seed = 11;
  p.rate = 1.0;
  p.kinds = 1u << static_cast<unsigned>(iofault::Kind::Eio);
  iofault::arm(p);
  const int fd = ::open("/dev/null", O_WRONLY);
  ASSERT_GE(fd, 0);
  errno = 0;
  EXPECT_EQ(iofault::xclose(fd), -1);
  EXPECT_EQ(errno, EIO);
  iofault::disarm();
  // The fd must already be gone — chaos never leaks descriptors.
  errno = 0;
  EXPECT_EQ(::close(fd), -1);
  EXPECT_EQ(errno, EBADF);
}

TEST_F(IoFaultTest, TornRenameSurfacesAHalfWrittenFileAtTheFinalName) {
  char tmpl[] = "/tmp/crusade_iofault_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  const std::string src = dir + "/src", dst = dir + "/dst";
  atomic_write_file(src, "0123456789ABCDEF");  // 16 bytes, seam disarmed
  iofault::Plan p;
  p.seed = 13;
  p.rate = 1.0;
  p.kinds = 1u << static_cast<unsigned>(iofault::Kind::TornRename);
  iofault::arm(p);
  EXPECT_EQ(iofault::xrename(src.c_str(), dst.c_str()), 0);
  iofault::disarm();
  const std::string torn = read_file(dst);
  EXPECT_EQ(torn, "01234567");  // truncated to half: a torn image
  (void)::unlink(dst.c_str());
  (void)::rmdir(dir.c_str());
}

TEST_F(IoFaultTest, AtomicWriteNeverLeavesAPartialFinalFile) {
  // Under every fault kind except the (intentionally corrupting) torn
  // rename, atomic_write_file either succeeds with the full payload at the
  // final name or throws with the final name untouched.
  char tmpl[] = "/tmp/crusade_iofault_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  const unsigned all_but_torn =
      ((1u << iofault::kKindCount) - 1u) &
      ~(1u << static_cast<unsigned>(iofault::Kind::TornRename));
  int wrote = 0, failed = 0;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const std::string path = dir + "/f" + std::to_string(seed);
    const std::string payload(1024, static_cast<char>('a' + seed % 26));
    iofault::Plan p;
    p.seed = seed;
    p.rate = 0.3;
    p.kinds = all_but_torn;
    iofault::arm(p);
    bool threw = false;
    try {
      atomic_write_file(path, payload);
    } catch (const Error&) {
      threw = true;
    }
    iofault::disarm();
    struct stat st;
    if (::stat(path.c_str(), &st) == 0) {
      EXPECT_EQ(read_file(path), payload) << "seed " << seed;
      ++wrote;
    } else {
      EXPECT_TRUE(threw) << "seed " << seed
                         << ": no file and no error — a silent loss";
      ++failed;
    }
    (void)::unlink(path.c_str());
    drain();  // burst residue must not couple consecutive seeds
  }
  // At rate 0.3 both fates occur across 24 seeds.
  EXPECT_GT(wrote, 0);
  EXPECT_GT(failed, 0);
  (void)::rmdir(dir.c_str());
}

// --- StopHub routing (multi-job signal handling) ---------------------------

TEST(StopHubTest, OnlyAttachedControllersObserveProcessSignals) {
  StopHub::instance().reset();
  RunController attached;
  RunController detached;  // a daemon job's controller: never attaches
  attached.attach_process_stop(&StopHub::instance());

  EXPECT_FALSE(attached.stop_requested());
  EXPECT_FALSE(detached.stop_requested());

  StopHub::instance().notify(SIGTERM);
  EXPECT_TRUE(attached.stop_requested());
  // The signal must not leak into jobs that did not opt in — this is what
  // lets the daemon cancel one request without stopping another.
  EXPECT_FALSE(detached.stop_requested());
  EXPECT_EQ(StopHub::instance().last_signal(), SIGTERM);
  EXPECT_EQ(StopHub::instance().notifications(), 1);

  StopHub::instance().reset();
  EXPECT_FALSE(attached.stop_requested());

  // Per-job cancellation still works independently of the hub.
  detached.request_stop();
  EXPECT_TRUE(detached.stop_requested());
  EXPECT_FALSE(attached.stop_requested());
}

}  // namespace
}  // namespace crusade
