// Unit tests for util: periodic-interval math (against brute force), RNG,
// integer math and the table formatter.
#include <gtest/gtest.h>

#include <cerrno>
#include <csignal>

#include <set>

#include "util/atomic_file.hpp"
#include "util/error.hpp"
#include "util/math.hpp"
#include "util/periodic.hpp"
#include "util/run_control.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace crusade {
namespace {

// --- periodic windows ---

/// Brute-force overlap over explicit instances within lcm(Pa, Pb).
bool brute_force_overlap(const PeriodicWindow& a, const PeriodicWindow& b) {
  if (a.empty() || b.empty()) return false;
  const TimeNs pa = a.period > 0 ? a.period : 0;
  const TimeNs pb = b.period > 0 ? b.period : 0;
  const TimeNs horizon =
      pa > 0 && pb > 0 ? lcm64(pa, pb) : std::max<TimeNs>(1'000'000, 1);
  auto instances = [&](const PeriodicWindow& w, TimeNs period,
                       std::vector<std::pair<TimeNs, TimeNs>>& out) {
    if (period == 0) {
      out.emplace_back(w.start, w.finish);
      return;
    }
    for (TimeNs k = -2 * horizon; k <= 2 * horizon; k += period)
      out.emplace_back(w.start + k, w.finish + k);
  };
  std::vector<std::pair<TimeNs, TimeNs>> ia, ib;
  instances(a, pa, ia);
  instances(b, pb, ib);
  for (const auto& [sa, fa] : ia)
    for (const auto& [sb, fb] : ib)
      if (sa < fb && sb < fa) return true;
  return false;
}

TEST(Periodic, EmptyWindowsNeverOverlap) {
  PeriodicWindow empty{10, 10, 100};
  PeriodicWindow busy{0, 50, 100};
  EXPECT_FALSE(periodic_overlap(empty, busy));
  EXPECT_FALSE(periodic_overlap(busy, empty));
}

TEST(Periodic, SamePeriodPlainIntervals) {
  PeriodicWindow a{0, 10, 100};
  EXPECT_TRUE(periodic_overlap(a, {5, 15, 100}));
  EXPECT_FALSE(periodic_overlap(a, {10, 20, 100}));  // half-open: no touch
  EXPECT_TRUE(periodic_overlap(a, {95, 105, 100}));  // wraps onto [0,5)
}

TEST(Periodic, HarmonicPeriods) {
  // 10-long window every 100 vs 10-long window every 50: the 50-periodic
  // window hits phase 0 and 50; only phase 20..30 stays clear of [0,10).
  PeriodicWindow slow{0, 10, 100};
  EXPECT_TRUE(periodic_overlap(slow, {5, 15, 50}));
  EXPECT_FALSE(periodic_overlap(slow, {20, 30, 50}));
}

TEST(Periodic, CoprimePeriodsAlwaysCollide) {
  // gcd(7, 11) = 1: any two non-empty windows eventually intersect.
  EXPECT_TRUE(periodic_overlap({0, 2, 7}, {3, 5, 11}));
}

TEST(Periodic, OneShotVsPeriodic) {
  PeriodicWindow once{95, 105, 0};
  EXPECT_TRUE(periodic_overlap(once, {0, 10, 100}));   // instance at 100
  EXPECT_FALSE(periodic_overlap(once, {10, 20, 100}));
  EXPECT_FALSE(periodic_overlap({0, 5, 0}, {5, 8, 0}));
  EXPECT_TRUE(periodic_overlap({0, 6, 0}, {5, 8, 0}));
}

TEST(Periodic, MatchesBruteForceOnGrid) {
  const TimeNs periods[] = {6, 10, 15, 30};
  int checked = 0;
  for (TimeNs pa : periods)
    for (TimeNs pb : periods)
      for (TimeNs sa = 0; sa < pa; sa += 2)
        for (TimeNs sb = 0; sb < pb; sb += 3)
          for (TimeNs la : {1, 3, 5}) {
            for (TimeNs lb : {1, 2, 4}) {
              PeriodicWindow a{sa, sa + la, pa};
              PeriodicWindow b{sb, sb + lb, pb};
              ASSERT_EQ(periodic_overlap(a, b), brute_force_overlap(a, b))
                  << "a=[" << sa << "," << sa + la << ")%" << pa << " b=["
                  << sb << "," << sb + lb << ")%" << pb;
              ++checked;
            }
          }
  EXPECT_GT(checked, 500);
}

TEST(Periodic, MinShiftResolvesConflict) {
  const PeriodicWindow b{0, 10, 50};
  PeriodicWindow a{5, 9, 100};
  ASSERT_TRUE(periodic_overlap(a, b));
  const TimeNs shift = min_shift_to_avoid(a, b);
  ASSERT_NE(shift, kNoTime);
  ASSERT_GT(shift, 0);
  a.start += shift;
  a.finish += shift;
  EXPECT_FALSE(periodic_overlap(a, b));
  // Minimality: shifting one less must still overlap.
  a.start -= 1;
  a.finish -= 1;
  EXPECT_TRUE(periodic_overlap(a, b));
}

TEST(Periodic, MinShiftZeroWhenAlreadyClear) {
  EXPECT_EQ(min_shift_to_avoid({20, 25, 50}, {0, 10, 50}), 0);
}

TEST(Periodic, MinShiftImpossibleWhenWindowsFillPeriod) {
  // Combined lengths exceed the gcd: no phase works.
  EXPECT_EQ(min_shift_to_avoid({0, 30, 50}, {0, 25, 50}), kNoTime);
}

TEST(Periodic, OverlapsAny) {
  std::vector<PeriodicWindow> set = {{0, 10, 100}, {50, 60, 100}};
  EXPECT_TRUE(overlaps_any({55, 58, 100}, set));
  EXPECT_FALSE(overlaps_any({20, 30, 100}, set));
}

// --- RNG ---

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, UniformIntInRange) {
  Rng rng(1);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(2);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(3);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 9000; ++i)
    ++counts[rng.weighted_index({1.0, 0.0, 2.0})];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 2.0, 0.3);
}

TEST(Rng, WeightedIndexRejectsAllZero) {
  Rng rng(4);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), Error);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(6);
  Rng child = a.fork();
  EXPECT_NE(a.next(), child.next());
}

// --- math ---

TEST(MathTest, Lcm) {
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(25'000, 1'000'000), 1'000'000);
  EXPECT_THROW(lcm64(0, 5), Error);
}

TEST(MathTest, LcmOverflowDetected) {
  EXPECT_THROW(lcm64(INT64_MAX - 1, INT64_MAX - 2), Error);
}

TEST(MathTest, Hyperperiod) {
  EXPECT_EQ(hyperperiod({25 * kMicrosecond, 100 * kMicrosecond, kMinute}),
            kMinute);
  EXPECT_THROW(hyperperiod({}), Error);
}

TEST(MathTest, FloorDivNegative) {
  EXPECT_EQ(floor_div(7, 3), 2);
  EXPECT_EQ(floor_div(-7, 3), -3);
  EXPECT_EQ(floor_div(-6, 3), -2);
}

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(ceil_div(7, 3), 3);
  EXPECT_EQ(ceil_div(6, 3), 2);
  EXPECT_EQ(ceil_div(0, 3), 0);
}

// --- table / formatting ---

TEST(TableTest, RendersAlignedColumns) {
  Table t({"A", "Bee"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string out = t.to_string("title");
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("| A   | Bee |"), std::string::npos);
  EXPECT_NE(out.find("| 333 | 4   |"), std::string::npos);
}

TEST(TableTest, RejectsArityMismatch) {
  Table t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TimeFormat, HumanReadable) {
  EXPECT_EQ(format_time(25 * kMicrosecond), "25us");
  EXPECT_EQ(format_time(kMinute), "60s");
  EXPECT_EQ(format_time(kNoTime), "-");
  EXPECT_EQ(format_time(1'500'000), "1.5ms");
}

// --- typed I/O errors (serve spool/cache hardening) ------------------------

TEST(IoErrorTest, CarriesErrnoAndClassifiesDiskFull) {
  EXPECT_TRUE(is_disk_full_errno(ENOSPC));
#ifdef EDQUOT
  EXPECT_TRUE(is_disk_full_errno(EDQUOT));
#endif
  EXPECT_FALSE(is_disk_full_errno(EACCES));
  EXPECT_FALSE(is_disk_full_errno(EIO));

  try {
    throw_io_error("spool write", ENOSPC);
    FAIL() << "throw_io_error returned";
  } catch (const DiskFullError& e) {
    EXPECT_EQ(e.error_number(), ENOSPC);
    EXPECT_NE(std::string(e.what()).find("spool write"), std::string::npos);
  }
  try {
    throw_io_error("spool write", EACCES);
    FAIL() << "throw_io_error returned";
  } catch (const DiskFullError&) {
    FAIL() << "EACCES misclassified as disk-full";
  } catch (const IoError& e) {
    EXPECT_EQ(e.error_number(), EACCES);
  }
  // DiskFullError remains catchable as the general classes.
  EXPECT_THROW(throw_io_error("x", ENOSPC), IoError);
  EXPECT_THROW(throw_io_error("x", ENOSPC), Error);
}

// --- StopHub routing (multi-job signal handling) ---------------------------

TEST(StopHubTest, OnlyAttachedControllersObserveProcessSignals) {
  StopHub::instance().reset();
  RunController attached;
  RunController detached;  // a daemon job's controller: never attaches
  attached.attach_process_stop(&StopHub::instance());

  EXPECT_FALSE(attached.stop_requested());
  EXPECT_FALSE(detached.stop_requested());

  StopHub::instance().notify(SIGTERM);
  EXPECT_TRUE(attached.stop_requested());
  // The signal must not leak into jobs that did not opt in — this is what
  // lets the daemon cancel one request without stopping another.
  EXPECT_FALSE(detached.stop_requested());
  EXPECT_EQ(StopHub::instance().last_signal(), SIGTERM);
  EXPECT_EQ(StopHub::instance().notifications(), 1);

  StopHub::instance().reset();
  EXPECT_FALSE(attached.stop_requested());

  // Per-job cancellation still works independently of the hub.
  detached.request_stop();
  EXPECT_TRUE(detached.stop_requested());
  EXPECT_FALSE(attached.stop_requested());
}

}  // namespace
}  // namespace crusade
