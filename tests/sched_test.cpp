// Unit tests for the scheduler stack: flattened spec, priority levels,
// timelines and the list scheduler (preemption, reboots, estimation).
#include <gtest/gtest.h>

#include "sched/scheduler.hpp"

namespace crusade {
namespace {

constexpr int kPeTypes = 2;

Task simple_task(TimeNs exec, TimeNs deadline = kNoTime) {
  Task t;
  t.name = "t";
  t.exec.assign(kPeTypes, exec);
  t.deadline = deadline;
  return t;
}

/// spec with one chain graph a->b->c (period 10ms) and one independent task
/// (period 1ms).
Specification two_graph_spec() {
  Specification spec;
  TaskGraph chain("chain", 10 * kMillisecond);
  const int a = chain.add_task(simple_task(kMillisecond));
  const int b = chain.add_task(simple_task(2 * kMillisecond));
  const int c = chain.add_task(simple_task(kMillisecond, 8 * kMillisecond));
  chain.add_edge(a, b, 64);
  chain.add_edge(b, c, 64);
  spec.graphs.push_back(std::move(chain));
  TaskGraph fast("fast", kMillisecond);
  fast.add_task(simple_task(100 * kMicrosecond, kMillisecond));
  spec.graphs.push_back(std::move(fast));
  return spec;
}

TEST(FlatSpecTest, IdMappingRoundTrips) {
  const Specification spec = two_graph_spec();
  const FlatSpec flat(spec);
  EXPECT_EQ(flat.task_count(), 4);
  EXPECT_EQ(flat.edge_count(), 2);
  EXPECT_EQ(flat.graph_count(), 2);
  EXPECT_EQ(flat.task_id(1, 0), 3);
  EXPECT_EQ(flat.graph_of_task(3), 1);
  EXPECT_EQ(flat.local_task(3), 0);
  EXPECT_EQ(flat.period(0), 10 * kMillisecond);
  EXPECT_EQ(flat.period(3), kMillisecond);
  EXPECT_EQ(flat.hyperperiod(), 10 * kMillisecond);
  EXPECT_EQ(flat.absolute_deadline(2), 8 * kMillisecond);
  EXPECT_EQ(flat.absolute_deadline(0), kNoTime);
  EXPECT_EQ(flat.topo_order().size(), 4u);
}

TEST(PriorityTest, SinkLevelIsExecMinusDeadline) {
  const Specification spec = two_graph_spec();
  const FlatSpec flat(spec);
  std::vector<TimeNs> task_time = {1000, 2000, 1000, 500};
  std::vector<TimeNs> edge_time = {10, 20};
  const PriorityLevels levels = priority_levels(flat, task_time, edge_time);
  EXPECT_DOUBLE_EQ(levels.task[2],
                   1000.0 - static_cast<double>(8 * kMillisecond));
  // Upstream levels accumulate exec + comm along the path.
  EXPECT_DOUBLE_EQ(levels.task[1], 2000 + 20 + levels.task[2]);
  EXPECT_DOUBLE_EQ(levels.task[0], 1000 + 10 + levels.task[1]);
  // Priorities strictly decrease downstream along a chain.
  EXPECT_GT(levels.task[0], levels.task[1]);
  EXPECT_GT(levels.task[1], levels.task[2]);
}

TEST(TimelineTest, EarliestFitOnEmptyIsReady) {
  Timeline tl;
  EXPECT_EQ(tl.earliest_fit(123, 10, 1000, -1), 123);
}

TEST(TimelineTest, EarliestFitSkipsBusyWindow) {
  Timeline tl;
  tl.add(0, 100, 1000, -1, 0);
  EXPECT_EQ(tl.earliest_fit(0, 50, 1000, -1), 100);
}

TEST(TimelineTest, ModesDoNotConflict) {
  Timeline tl;
  tl.add(0, 100, 1000, /*mode=*/0, 0);
  // A different reconfiguration mode shares the silicon temporally.
  EXPECT_EQ(tl.earliest_fit(0, 50, 1000, /*mode=*/1), 0);
  // The same mode conflicts.
  EXPECT_EQ(tl.earliest_fit(0, 50, 1000, /*mode=*/0), 100);
  // Modeless conflicts with everything.
  EXPECT_EQ(tl.earliest_fit(0, 50, 1000, /*mode=*/-1), 100);
}

TEST(TimelineTest, IgnoreBandsFilterByPeriod) {
  Timeline tl;
  tl.add(0, 100, 1000, -1, 0);     // fast window
  tl.add(0, 100, 100'000, -1, 1);  // slow window
  // Ignoring below 10'000 skips the fast window; the slow one still blocks.
  EXPECT_EQ(tl.earliest_fit(0, 50, 10'000, -1, /*ignore_below=*/10'000), 100);
  // Ignoring above too: nothing blocks.
  EXPECT_EQ(tl.earliest_fit(0, 50, 10'000, -1, 10'000, 10'000), 0);
}

TEST(TimelineTest, PreemptorsAndUtilization) {
  Timeline tl;
  tl.add(0, 100, 1000, -1, 0, /*work=*/80);
  tl.add(0, 500, 100'000, -1, 1, /*work=*/400);
  const auto hp = tl.preemptors(10'000, -1);
  ASSERT_EQ(hp.size(), 1u);
  EXPECT_EQ(hp[0].exec, 80);  // pure work, not the inflated span
  EXPECT_EQ(hp[0].period, 1000);
  EXPECT_DOUBLE_EQ(tl.utilization_above(10'000, -1), 400.0 / 100'000);
  EXPECT_NEAR(tl.utilization(), 80.0 / 1000 + 400.0 / 100'000, 1e-12);
}

// --- list scheduler ---

SchedProblem one_resource_problem(const FlatSpec& flat, bool preemptive,
                                  bool concurrent = false) {
  SchedProblem p;
  p.flat = &flat;
  p.resources.push_back(
      SchedResourceInfo{preemptive, concurrent, 10 * kMicrosecond, {}});
  p.task_resource.assign(flat.task_count(), 0);
  p.task_mode.assign(flat.task_count(), -1);
  p.task_exec.resize(flat.task_count());
  for (int t = 0; t < flat.task_count(); ++t)
    p.task_exec[t] = flat.task(t).exec[0];
  p.edge_resource.assign(flat.edge_count(), -1);
  p.edge_comm.assign(flat.edge_count(), 0);
  return p;
}

TEST(SchedulerTest, ChainRespectsPrecedence) {
  const Specification spec = two_graph_spec();
  const FlatSpec flat(spec);
  SchedProblem p = one_resource_problem(flat, /*preemptive=*/false,
                                        /*concurrent=*/true);
  const PriorityLevels levels =
      priority_levels(flat, p.task_exec,
                      std::vector<TimeNs>(flat.edge_count(), 0));
  const ScheduleResult r = run_list_scheduler(p, levels);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.scheduled_tasks, 4);
  // Precedence: b starts after a finishes, c after b.
  EXPECT_GE(r.task_start[1], r.task_finish[0]);
  EXPECT_GE(r.task_start[2], r.task_finish[1]);
  EXPECT_TRUE(r.deadline_met(2, flat));
}

TEST(SchedulerTest, SerialResourceSerializes) {
  Specification spec;
  TaskGraph g("par", 10 * kMillisecond);
  g.add_task(simple_task(kMillisecond, 10 * kMillisecond));
  g.add_task(simple_task(kMillisecond, 10 * kMillisecond));
  spec.graphs.push_back(std::move(g));
  const FlatSpec flat(spec);
  SchedProblem p = one_resource_problem(flat, false, false);
  const PriorityLevels levels =
      priority_levels(flat, p.task_exec,
                      std::vector<TimeNs>(flat.edge_count(), 0));
  const ScheduleResult r = run_list_scheduler(p, levels);
  ASSERT_TRUE(r.feasible);
  // Non-preemptive serial resource: the two windows must not overlap.
  const bool disjoint = r.task_finish[0] <= r.task_start[1] ||
                        r.task_finish[1] <= r.task_start[0];
  EXPECT_TRUE(disjoint);
}

TEST(SchedulerTest, ConcurrentHardwareOverlaps) {
  Specification spec;
  TaskGraph g("par", 10 * kMillisecond);
  g.add_task(simple_task(kMillisecond, 10 * kMillisecond));
  g.add_task(simple_task(kMillisecond, 10 * kMillisecond));
  spec.graphs.push_back(std::move(g));
  const FlatSpec flat(spec);
  SchedProblem p = one_resource_problem(flat, false, /*concurrent=*/true);
  const PriorityLevels levels =
      priority_levels(flat, p.task_exec,
                      std::vector<TimeNs>(flat.edge_count(), 0));
  const ScheduleResult r = run_list_scheduler(p, levels);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.task_start[0], 0);
  EXPECT_EQ(r.task_start[1], 0);  // dedicated circuits run in parallel
}

TEST(SchedulerTest, PreemptionInflatesLowerRateTask) {
  Specification spec;
  TaskGraph fast("fast", kMillisecond);
  fast.add_task(simple_task(200 * kMicrosecond, kMillisecond));
  spec.graphs.push_back(std::move(fast));
  TaskGraph slow("slow", 100 * kMillisecond);
  slow.add_task(simple_task(10 * kMillisecond, 100 * kMillisecond));
  spec.graphs.push_back(std::move(slow));
  const FlatSpec flat(spec);
  SchedProblem p = one_resource_problem(flat, /*preemptive=*/true);
  const PriorityLevels levels =
      priority_levels(flat, p.task_exec,
                      std::vector<TimeNs>(flat.edge_count(), 0));
  const ScheduleResult r = run_list_scheduler(p, levels);
  ASSERT_TRUE(r.feasible);
  // The 10ms task shares the CPU with a 200us-every-1ms task (20% + OS
  // overhead per preemption): its busy window must stretch well beyond 10ms.
  const TimeNs slow_tid = flat.task_id(1, 0);
  const TimeNs busy = r.task_finish[slow_tid] - r.task_start[slow_tid];
  EXPECT_GT(busy, 12 * kMillisecond);
}

TEST(SchedulerTest, RebootTaskDelaysModeStart) {
  Specification spec;
  TaskGraph g("modeful", 100 * kMillisecond);
  g.add_task(simple_task(kMillisecond, 100 * kMillisecond));
  spec.graphs.push_back(std::move(g));
  const FlatSpec flat(spec);
  SchedProblem p = one_resource_problem(flat, false, /*concurrent=*/true);
  p.resources[0].mode_boot = {5 * kMillisecond, 5 * kMillisecond};
  p.task_mode[0] = 1;
  const PriorityLevels levels =
      priority_levels(flat, p.task_exec,
                      std::vector<TimeNs>(flat.edge_count(), 0));
  const ScheduleResult r = run_list_scheduler(p, levels);
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(r.task_start[0], 5 * kMillisecond);  // after the reconfiguration
}

TEST(SchedulerTest, CommunicationOccupiesLink) {
  const Specification spec = two_graph_spec();
  const FlatSpec flat(spec);
  SchedProblem p = one_resource_problem(flat, false, /*concurrent=*/true);
  // Put task b on a second resource; its input edge rides resource 2 (link).
  p.resources.push_back(SchedResourceInfo{false, true, 0, {}});
  p.resources.push_back(SchedResourceInfo{false, false, 0, {}});  // link
  p.task_resource[1] = 1;
  p.edge_resource[0] = 2;
  p.edge_comm[0] = 300 * kMicrosecond;
  const PriorityLevels levels =
      priority_levels(flat, p.task_exec, p.edge_comm);
  const ScheduleResult r = run_list_scheduler(p, levels);
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(r.edge_start[0], r.task_finish[0]);
  EXPECT_EQ(r.edge_finish[0], r.edge_start[0] + 300 * kMicrosecond);
  EXPECT_GE(r.task_start[1], r.edge_finish[0]);
  // The link timeline actually holds the transfer.
  EXPECT_EQ(r.timelines[2].windows().size(), 1u);
}

TEST(SchedulerTest, MissedDeadlineCountsTardiness) {
  Specification spec;
  TaskGraph g("late", 10 * kMillisecond);
  g.add_task(simple_task(2 * kMillisecond, kMillisecond));  // impossible
  spec.graphs.push_back(std::move(g));
  const FlatSpec flat(spec);
  SchedProblem p = one_resource_problem(flat, false, true);
  const PriorityLevels levels =
      priority_levels(flat, p.task_exec,
                      std::vector<TimeNs>(flat.edge_count(), 0));
  const ScheduleResult r = run_list_scheduler(p, levels);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.total_tardiness, kMillisecond);
}

TEST(SchedulerTest, UnallocatedAncestryIsSkipped) {
  const Specification spec = two_graph_spec();
  const FlatSpec flat(spec);
  SchedProblem p = one_resource_problem(flat, false, true);
  p.task_resource[0] = -1;  // chain head unallocated
  const PriorityLevels levels =
      priority_levels(flat, p.task_exec,
                      std::vector<TimeNs>(flat.edge_count(), 0));
  const ScheduleResult r = run_list_scheduler(p, levels);
  EXPECT_EQ(r.task_start[0], kNoTime);
  EXPECT_EQ(r.task_start[1], kNoTime);  // depends on unallocated ancestor
  EXPECT_EQ(r.task_start[2], kNoTime);
  EXPECT_NE(r.task_start[3], kNoTime);  // independent graph still runs
}

TEST(SchedulerTest, EstimationFlagsDoomedDeadline) {
  Specification spec;
  TaskGraph g("doomed", 10 * kMillisecond);
  const int a = g.add_task(simple_task(9 * kMillisecond));
  const int b = g.add_task(simple_task(2 * kMillisecond, 10 * kMillisecond));
  g.add_edge(a, b, 8);
  spec.graphs.push_back(std::move(g));
  const FlatSpec flat(spec);
  SchedProblem p = one_resource_problem(flat, false, true);
  p.task_resource[b] = -1;  // sink not yet allocated
  std::vector<TimeNs> optimistic = {9 * kMillisecond, 2 * kMillisecond};
  p.task_optimistic = &optimistic;
  const PriorityLevels levels =
      priority_levels(flat, p.task_exec,
                      std::vector<TimeNs>(flat.edge_count(), 0));
  const ScheduleResult r = run_list_scheduler(p, levels);
  // a finishes at 9ms; even the optimistic 2ms remainder misses 10ms.
  EXPECT_EQ(r.estimated_tardiness, kMillisecond);
  EXPECT_EQ(r.total_tardiness, 0);
}

TEST(SchedulerTest, GraphBusyWindows) {
  const Specification spec = two_graph_spec();
  const FlatSpec flat(spec);
  SchedProblem p = one_resource_problem(flat, false, true);
  const PriorityLevels levels =
      priority_levels(flat, p.task_exec,
                      std::vector<TimeNs>(flat.edge_count(), 0));
  const ScheduleResult r = run_list_scheduler(p, levels);
  const auto windows = graph_busy_windows(flat, r);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].size(), 3u);  // three tasks, no routed edges
  EXPECT_EQ(windows[1].size(), 1u);
  for (const auto& w : windows[0]) EXPECT_EQ(w.period, 10 * kMillisecond);
}

}  // namespace
}  // namespace crusade
