// Unit tests for clustering, the architecture model and the allocator.
#include <gtest/gtest.h>

#include "alloc/allocation.hpp"
#include "tgff/generator.hpp"

namespace crusade {
namespace {

const ResourceLibrary& lib() {
  static const ResourceLibrary l = telecom_1999();
  return l;
}

Specification small_spec(std::uint64_t seed = 21, int tasks = 80) {
  SpecGenerator gen(lib());
  SpecGenConfig cfg;
  cfg.total_tasks = tasks;
  cfg.seed = seed;
  return gen.generate(cfg);
}

// --- clustering ---

TEST(ClusterTest, PartitionsEveryTaskExactlyOnce) {
  const Specification spec = small_spec();
  const FlatSpec flat(spec);
  const auto clusters = cluster_tasks(flat, lib(), ClusteringParams{});
  std::vector<int> owner(flat.task_count(), -1);
  for (const Cluster& c : clusters) {
    EXPECT_FALSE(c.tasks.empty());
    for (int tid : c.tasks) {
      EXPECT_EQ(owner[tid], -1) << "task in two clusters";
      owner[tid] = c.id;
    }
  }
  for (int tid = 0; tid < flat.task_count(); ++tid)
    EXPECT_NE(owner[tid], -1) << "unclustered task";
}

TEST(ClusterTest, NeverSpansGraphsAndRespectsSizeCap) {
  const Specification spec = small_spec();
  const FlatSpec flat(spec);
  ClusteringParams params;
  params.max_cluster_size = 5;
  for (const Cluster& c : cluster_tasks(flat, lib(), params)) {
    EXPECT_LE(static_cast<int>(c.tasks.size()), 5);
    for (int tid : c.tasks) EXPECT_EQ(flat.graph_of_task(tid), c.graph);
  }
}

TEST(ClusterTest, FeasibilityMaskNonEmptyAndAggregatesMatch) {
  const Specification spec = small_spec();
  const FlatSpec flat(spec);
  for (const Cluster& c : cluster_tasks(flat, lib(), ClusteringParams{})) {
    bool any = false;
    for (char f : c.feasible_pe) any = any || f;
    EXPECT_TRUE(any) << "cluster with no feasible PE type";
    std::int64_t memory = 0;
    int pfus = 0;
    for (int tid : c.tasks) {
      memory += flat.task(tid).memory.total();
      pfus += flat.task(tid).pfus;
    }
    EXPECT_EQ(c.memory, memory);
    EXPECT_EQ(c.pfus, pfus);
  }
}

TEST(ClusterTest, ExclusionsKeptApart) {
  Specification spec;
  TaskGraph g("x", 10 * kMillisecond);
  Task t;
  t.name = "t";
  t.exec.assign(lib().pe_count(), 100 * kMicrosecond);
  const int a = g.add_task(t);
  const int b = g.add_task(t);
  g.add_edge(a, b, 8);
  g.add_exclusion(a, b);
  spec.graphs.push_back(std::move(g));
  const FlatSpec flat(spec);
  for (const Cluster& c : cluster_tasks(flat, lib(), ClusteringParams{}))
    EXPECT_EQ(c.tasks.size(), 1u);  // the pair must not merge
}

TEST(ClusterTest, DisabledYieldsSingletons) {
  const Specification spec = small_spec();
  const FlatSpec flat(spec);
  ClusteringParams params;
  params.enabled = false;
  const auto clusters = cluster_tasks(flat, lib(), params);
  EXPECT_EQ(static_cast<int>(clusters.size()), flat.task_count());
}

TEST(ClusterTest, ClusteringReducesClusterCount) {
  const Specification spec = small_spec();
  const FlatSpec flat(spec);
  const auto on = cluster_tasks(flat, lib(), ClusteringParams{});
  EXPECT_LT(on.size(), static_cast<std::size_t>(flat.task_count()));
}

// --- architecture ---

TEST(ArchitectureTest, PlacementBookkeeping) {
  Architecture arch(&lib(), /*clusters=*/2, /*edges=*/1);
  const PeTypeId fpga = lib().find_pe("AT6005");
  const int pe = arch.add_pe(fpga);
  arch.place_cluster(0, pe, 0, /*graph=*/0, 1024, 600, 50, 10);
  EXPECT_EQ(arch.cluster_pe[0], pe);
  EXPECT_EQ(arch.pes[pe].modes[0].pfus_used, 50);
  EXPECT_TRUE(arch.pes[pe].alive());
  EXPECT_EQ(arch.live_pe_count(), 1);
  // New mode on a programmable device.
  arch.place_cluster(1, pe, 1, /*graph=*/1, 0, 0, 70, 12);
  EXPECT_EQ(arch.pes[pe].modes.size(), 2u);
  EXPECT_EQ(arch.total_modes(), 2);
  EXPECT_TRUE(arch.pes[pe].modes[1].has_graph(1));
}

TEST(ArchitectureTest, OnlyProgrammableGrowsModes) {
  Architecture arch(&lib(), 2, 0);
  const int cpu = arch.add_pe(lib().find_pe("MC68360"));
  arch.place_cluster(0, cpu, 0, 0, 1024, 0, 0, 0);
  EXPECT_THROW(arch.place_cluster(1, cpu, 1, 1, 1024, 0, 0, 0), Error);
}

TEST(ArchitectureTest, LinksAndCost) {
  Architecture arch(&lib(), 2, 0);
  const int a = arch.add_pe(lib().find_pe("MC68360"));
  const int b = arch.add_pe(lib().find_pe("MC68040"));
  const int link = arch.add_link(lib().find_link("680X0-bus"));
  arch.attach(link, a);
  arch.attach(link, b);
  EXPECT_EQ(arch.link_between(a, b), link);
  EXPECT_EQ(arch.link_between(b, a), link);
  arch.place_cluster(0, a, 0, 0, 8 << 20, 0, 0, 0);
  arch.place_cluster(1, b, 0, 0, 1024, 0, 0, 0);
  const CostBreakdown cost = arch.cost();
  EXPECT_DOUBLE_EQ(cost.pes, lib().pe(arch.pes[a].type).cost +
                                 lib().pe(arch.pes[b].type).cost);
  EXPECT_GT(cost.memory, 0);  // 8MB on the first CPU
  EXPECT_DOUBLE_EQ(cost.links, 6 + 2 * 2);
  EXPECT_EQ(arch.live_link_count(), 1);
}

TEST(ArchitectureTest, DeadPeAndEmptyLinkNotCounted) {
  Architecture arch(&lib(), 1, 0);
  arch.add_pe(lib().find_pe("MC68360"));  // never used
  arch.add_link(lib().find_link("680X0-bus"));
  EXPECT_EQ(arch.live_pe_count(), 0);
  EXPECT_EQ(arch.live_link_count(), 0);
  EXPECT_DOUBLE_EQ(arch.cost().total(), 0);
}

// --- allocator end-to-end on a small spec ---

struct AllocRun {
  Specification spec;
  std::vector<Cluster> clusters;
  AllocationOutcome outcome;
};

AllocRun run_allocator(std::uint64_t seed, bool use_modes) {
  AllocRun run{small_spec(seed, 70), {}, {}};
  static std::vector<std::unique_ptr<FlatSpec>> keep_alive;
  keep_alive.push_back(std::make_unique<FlatSpec>(run.spec));
  const FlatSpec& flat = *keep_alive.back();
  run.clusters = cluster_tasks(flat, lib(), ClusteringParams{});
  AllocParams params;
  params.use_modes = use_modes && run.spec.compatibility.has_value();
  params.reboots_in_schedule = !params.use_modes;
  Allocator allocator(
      flat, lib(),
      params.use_modes ? &*run.spec.compatibility : nullptr, params);
  run.outcome = allocator.run(run.clusters);
  return run;
}

TEST(AllocatorTest, PlacesEveryClusterAndMeetsDeadlines) {
  const AllocRun run = run_allocator(31, false);
  for (std::size_t c = 0; c < run.clusters.size(); ++c)
    EXPECT_GE(run.outcome.arch.cluster_pe[c], 0) << "unplaced cluster " << c;
  EXPECT_TRUE(run.outcome.feasible);
}

TEST(AllocatorTest, CapacitiesRespected) {
  const AllocRun run = run_allocator(32, true);
  const Architecture& arch = run.outcome.arch;
  DelayManagement delay;
  for (const PeInstance& inst : arch.pes) {
    if (!inst.alive()) continue;
    const PeType& type = lib().pe(inst.type);
    switch (type.kind) {
      case PeKind::Cpu:
        EXPECT_LE(inst.memory_used, type.memory_bytes);
        break;
      case PeKind::Asic:
        EXPECT_LE(inst.modes[0].gates_used, type.gates);
        EXPECT_LE(inst.modes[0].pins_used, type.pins);
        break;
      case PeKind::Fpga:
      case PeKind::Cpld:
        for (const Mode& m : inst.modes) {
          EXPECT_LE(m.pfus_used, delay.usable_pfus(type.pfus));
          EXPECT_LE(m.pins_used, delay.usable_pins(type.pins));
        }
        break;
    }
  }
}

TEST(AllocatorTest, TasksOnlyOnFeasibleTypes) {
  const AllocRun run = run_allocator(33, true);
  const FlatSpec flat(run.spec);
  for (int tid = 0; tid < flat.task_count(); ++tid) {
    const int c = run.outcome.task_cluster[tid];
    const int pe = run.outcome.arch.cluster_pe[c];
    ASSERT_GE(pe, 0);
    EXPECT_TRUE(flat.task(tid).feasible_on(run.outcome.arch.pes[pe].type));
  }
}

TEST(AllocatorTest, CrossPeEdgesHaveLinks) {
  const AllocRun run = run_allocator(34, false);
  const FlatSpec flat(run.spec);
  const Architecture& arch = run.outcome.arch;
  for (int eid = 0; eid < flat.edge_count(); ++eid) {
    const int cs = run.outcome.task_cluster[flat.edge_src(eid)];
    const int cd = run.outcome.task_cluster[flat.edge_dst(eid)];
    const int ps = arch.cluster_pe[cs];
    const int pd = arch.cluster_pe[cd];
    if (ps == pd) continue;
    const int link = arch.edge_link[eid];
    ASSERT_GE(link, 0) << "cross-PE edge without a link";
    EXPECT_TRUE(arch.links[link].is_attached(ps));
    EXPECT_TRUE(arch.links[link].is_attached(pd));
  }
}

TEST(AllocatorTest, ModesHoldOnlyCompatibleGraphs) {
  const AllocRun run = run_allocator(35, true);
  if (!run.spec.compatibility) GTEST_SKIP();
  const auto& compat = *run.spec.compatibility;
  for (const PeInstance& inst : run.outcome.arch.pes) {
    if (inst.modes.size() < 2) continue;
    // Graphs in different modes of one device must be pairwise compatible.
    for (std::size_t m1 = 0; m1 < inst.modes.size(); ++m1)
      for (std::size_t m2 = m1 + 1; m2 < inst.modes.size(); ++m2)
        for (int g1 : inst.modes[m1].graphs)
          for (int g2 : inst.modes[m2].graphs)
            EXPECT_TRUE(compat.compatible(g1, g2))
                << "incompatible graphs " << g1 << "," << g2
                << " time-share a device";
  }
}

TEST(AllocatorTest, ExclusionsLandOnDistinctPes) {
  const AllocRun run = run_allocator(36, false);
  const FlatSpec flat(run.spec);
  for (int tid = 0; tid < flat.task_count(); ++tid) {
    for (int other : flat.exclusions(tid)) {
      const int pa = run.outcome.arch.cluster_pe[run.outcome.task_cluster[tid]];
      const int pb =
          run.outcome.arch.cluster_pe[run.outcome.task_cluster[other]];
      EXPECT_NE(pa, pb) << "excluded pair shares a PE";
    }
  }
}

TEST(MakeSchedProblemTest, MapsAllocationFaithfully) {
  const AllocRun run = run_allocator(37, false);
  const FlatSpec flat(run.spec);
  const SchedProblem p = make_sched_problem(
      run.outcome.arch, flat, run.outcome.task_cluster, {}, true);
  EXPECT_EQ(p.resources.size(),
            run.outcome.arch.pes.size() + run.outcome.arch.links.size());
  for (int tid = 0; tid < flat.task_count(); ++tid) {
    const int pe = p.task_resource[tid];
    ASSERT_GE(pe, 0);
    EXPECT_EQ(p.task_exec[tid],
              flat.task(tid).exec[run.outcome.arch.pes[pe].type]);
    const PeType& type = lib().pe(run.outcome.arch.pes[pe].type);
    EXPECT_EQ(p.resources[pe].preemptive, type.kind == PeKind::Cpu);
    EXPECT_EQ(p.resources[pe].concurrent, type.is_hardware());
  }
}

}  // namespace
}  // namespace crusade
